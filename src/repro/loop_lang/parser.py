"""Recursive-descent parser for the loop-based language.

The grammar implemented here covers every program in Appendix B of the paper.
Statements are terminated by ``;``, blocks are delimited by ``{`` / ``}``,
assignment is spelled ``:=`` and incremental updates use compound operators
(``+=``, ``*=``, ``^=``, ``^^=`` ...).  Parenthesized comma-separated
expressions denote tuples; calls with an uppercase name are typically record
constructors registered with the runtime (e.g. ``ArgMin``/``Avg`` in the
KMeans program).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ParseError
from repro.loop_lang import ast
from repro.loop_lang.lexer import Token, tokenize

#: Incremental-update symbols mapped to the underlying binary operator.
INCREMENT_OPERATORS = {
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "/",
    "^=": "^",
    "^^=": "^^",
}

_COMPARISON_OPS = ("==", "!=", "<=", ">=", "<", ">")
_ADDITIVE_OPS = ("+", "-", "^", "^^")
_MULTIPLICATIVE_OPS = ("*", "/", "%")


class Parser:
    """Parses a token stream into loop-language AST nodes."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers ------------------------------------------------------

    def _current(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def _check_symbol(self, text: str) -> bool:
        return self._current().is_symbol(text)

    def _check_keyword(self, text: str) -> bool:
        return self._current().is_keyword(text)

    def _match_symbol(self, text: str) -> bool:
        if self._check_symbol(text):
            self._advance()
            return True
        return False

    def _match_keyword(self, text: str) -> bool:
        if self._check_keyword(text):
            self._advance()
            return True
        return False

    def _expect_symbol(self, text: str) -> Token:
        token = self._current()
        if not token.is_symbol(text):
            raise ParseError(f"expected {text!r} but found {token}", token.location)
        return self._advance()

    def _expect_keyword(self, text: str) -> Token:
        token = self._current()
        if not token.is_keyword(text):
            raise ParseError(f"expected keyword {text!r} but found {token}", token.location)
        return self._advance()

    def _expect_identifier(self) -> Token:
        token = self._current()
        if token.kind != "ident":
            raise ParseError(f"expected an identifier but found {token}", token.location)
        return self._advance()

    # -- program / statements ----------------------------------------------

    def parse_program(self) -> ast.Program:
        statements: list[ast.Stmt] = []
        while self._current().kind != "eof":
            statements.append(self.parse_statement())
        return ast.Program(tuple(statements))

    def parse_statement(self) -> ast.Stmt:
        # Tolerate stray semicolons between statements (the Appendix programs
        # end blocks with "};").
        while self._match_symbol(";"):
            pass
        token = self._current()
        statement = self._parse_statement_body(token)
        if statement.location.line <= 0 and token.location.line > 0:
            statement = dataclasses.replace(statement, location=token.location)
        return statement

    def _parse_statement_body(self, token: "Token") -> ast.Stmt:
        if token.is_keyword("var"):
            return self._parse_var_decl()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_symbol("{"):
            return self._parse_block()
        return self._parse_simple_statement()

    def _parse_var_decl(self) -> ast.VarDecl:
        self._expect_keyword("var")
        name = self._expect_identifier().text
        self._expect_symbol(":")
        var_type = self.parse_type()
        self._expect_symbol("=")
        init = self.parse_expression()
        self._expect_symbol(";")
        return ast.VarDecl(name, var_type, init)

    def _parse_for(self) -> ast.Stmt:
        self._expect_keyword("for")
        variable = self._expect_identifier().text
        if self._match_keyword("in"):
            source = self.parse_expression()
            self._expect_keyword("do")
            body = self.parse_statement()
            return ast.ForIn(variable, source, body)
        self._expect_symbol("=")
        lower = self.parse_expression()
        self._expect_symbol(",")
        upper = self.parse_expression()
        self._expect_keyword("do")
        body = self.parse_statement()
        return ast.ForRange(variable, lower, upper, body)

    def _parse_while(self) -> ast.While:
        self._expect_keyword("while")
        self._expect_symbol("(")
        condition = self.parse_expression()
        self._expect_symbol(")")
        body = self.parse_statement()
        return ast.While(condition, body)

    def _parse_if(self) -> ast.If:
        self._expect_keyword("if")
        self._expect_symbol("(")
        condition = self.parse_expression()
        self._expect_symbol(")")
        then_branch = self.parse_statement()
        else_branch = None
        if self._match_keyword("else"):
            else_branch = self.parse_statement()
        return ast.If(condition, then_branch, else_branch)

    def _parse_block(self) -> ast.Block:
        self._expect_symbol("{")
        statements: list[ast.Stmt] = []
        while not self._check_symbol("}"):
            if self._current().kind == "eof":
                raise ParseError("unterminated block", self._current().location)
            if self._match_symbol(";"):
                continue
            statements.append(self.parse_statement())
        self._expect_symbol("}")
        # Optional trailing semicolon after a block ("};" in the Appendix).
        self._match_symbol(";")
        return ast.Block(tuple(statements))

    def _parse_simple_statement(self) -> ast.Stmt:
        destination = self.parse_expression()
        if not ast.is_destination(destination):
            raise ParseError(
                f"expression {destination} is not a valid assignment destination",
                self._current().location,
            )
        token = self._current()
        if token.kind == "symbol" and token.text in INCREMENT_OPERATORS:
            self._advance()
            value = self.parse_expression()
            self._expect_symbol(";")
            return ast.IncrementalUpdate(destination, INCREMENT_OPERATORS[token.text], value)
        if self._match_symbol(":="):
            value = self.parse_expression()
            self._expect_symbol(";")
            return ast.Assign(destination, value)
        raise ParseError(f"expected ':=' or an incremental operator but found {token}", token.location)

    # -- types ---------------------------------------------------------------

    def parse_type(self) -> ast.Type:
        token = self._current()
        if token.is_symbol("("):
            self._advance()
            elements = [self.parse_type()]
            while self._match_symbol(","):
                elements.append(self.parse_type())
            self._expect_symbol(")")
            return ast.TupleType(tuple(elements))
        name_token = self._expect_identifier()
        name = name_token.text.lower()
        if self._match_symbol("["):
            parameters = [self.parse_type()]
            while self._match_symbol(","):
                parameters.append(self.parse_type())
            self._expect_symbol("]")
            return ast.ParametricType(name, tuple(parameters))
        return ast.BasicType(name)

    # -- expressions ---------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._check_symbol("||"):
            self._advance()
            right = self._parse_and()
            left = ast.BinOp("||", left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._check_symbol("&&"):
            self._advance()
            right = self._parse_not()
            left = ast.BinOp("&&", left, right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._check_symbol("!"):
            self._advance()
            return ast.UnaryOp("!", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        token = self._current()
        if token.kind == "symbol" and token.text in _COMPARISON_OPS:
            self._advance()
            right = self._parse_additive()
            return ast.BinOp(token.text, left, right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._current()
            if token.kind == "symbol" and token.text in _ADDITIVE_OPS:
                self._advance()
                right = self._parse_multiplicative()
                left = ast.BinOp(token.text, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._current()
            if token.kind == "symbol" and token.text in _MULTIPLICATIVE_OPS:
                self._advance()
                right = self._parse_unary()
                left = ast.BinOp(token.text, left, right)
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        if self._check_symbol("-"):
            self._advance()
            operand = self._parse_unary()
            if isinstance(operand, ast.Const) and isinstance(operand.value, (int, float)):
                return ast.Const(-operand.value)
            return ast.UnaryOp("-", operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._check_symbol("["):
                self._advance()
                indices = [self.parse_expression()]
                while self._match_symbol(","):
                    indices.append(self.parse_expression())
                self._expect_symbol("]")
                expr = ast.Index(expr, tuple(indices))
            elif self._check_symbol("."):
                self._advance()
                attribute_token = self._current()
                if attribute_token.kind == "ident":
                    self._advance()
                    attribute = attribute_token.text
                elif attribute_token.kind == "int":
                    # allow ".1" style projections just in case
                    self._advance()
                    attribute = f"_{attribute_token.text}"
                else:
                    raise ParseError(
                        f"expected an attribute name after '.' but found {attribute_token}",
                        attribute_token.location,
                    )
                expr = ast.Project(expr, attribute)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._current()
        if token.kind == "int":
            self._advance()
            return ast.Const(int(token.text))
        if token.kind == "float":
            self._advance()
            return ast.Const(float(token.text))
        if token.kind == "string":
            self._advance()
            return ast.Const(token.text)
        if token.is_keyword("true"):
            self._advance()
            return ast.Const(True)
        if token.is_keyword("false"):
            self._advance()
            return ast.Const(False)
        if token.kind == "ident":
            self._advance()
            if self._check_symbol("("):
                self._advance()
                arguments: list[ast.Expr] = []
                if not self._check_symbol(")"):
                    arguments.append(self.parse_expression())
                    while self._match_symbol(","):
                        arguments.append(self.parse_expression())
                self._expect_symbol(")")
                return ast.Call(token.text, tuple(arguments))
            return ast.Var(token.text, token.location)
        if token.is_symbol("("):
            self._advance()
            elements = [self.parse_expression()]
            while self._match_symbol(","):
                elements.append(self.parse_expression())
            self._expect_symbol(")")
            if len(elements) == 1:
                return elements[0]
            return ast.TupleExpr(tuple(elements))
        raise ParseError(f"unexpected token {token}", token.location)


def parse_program(source: str) -> ast.Program:
    """Parse a complete loop-language program from source text."""
    parser = Parser(tokenize(source))
    program = parser.parse_program()
    return program


def parse_expression(source: str) -> ast.Expr:
    """Parse a single loop-language expression (useful in tests)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expression()
    token = parser._current()
    if token.kind != "eof":
        raise ParseError(f"unexpected trailing input {token}", token.location)
    return expr


def parse_statement(source: str) -> ast.Stmt:
    """Parse a single loop-language statement (useful in tests)."""
    parser = Parser(tokenize(source))
    stmt = parser.parse_statement()
    token = parser._current()
    if token.kind != "eof":
        raise ParseError(f"unexpected trailing input {token}", token.location)
    return stmt
