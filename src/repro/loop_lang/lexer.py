"""Tokenizer for the concrete syntax of the loop-based language.

The concrete syntax follows the programs listed in Appendix B of the paper:
statements are terminated by ``;``, assignment is ``:=``, incremental updates
are written ``+=``, ``*=``, ``^=`` and so on, and for-loops use the
``for i = lo, hi do`` and ``for x in V do`` forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import LexerError, SourceLocation

#: Reserved words of the language.
KEYWORDS = frozenset(
    {
        "var",
        "for",
        "in",
        "do",
        "while",
        "if",
        "else",
        "true",
        "false",
    }
)

#: Multi-character operators / punctuation, longest first so that the longest
#: match wins during scanning.
MULTI_CHAR_SYMBOLS = [
    "^^=",
    ":=",
    "+=",
    "-=",
    "*=",
    "/=",
    "^=",
    "^^",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
]

#: Single-character symbols.
SINGLE_CHAR_SYMBOLS = "+-*/%^<>=!(){}[],;:."


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: one of ``ident``, ``int``, ``float``, ``string``, ``keyword``,
            ``symbol`` or ``eof``.
        text: the matched source text (or canonical spelling for symbols).
        location: position of the first character of the token.
    """

    kind: str
    text: str
    location: SourceLocation

    def is_symbol(self, text: str) -> bool:
        return self.kind == "symbol" and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.text == text

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class Lexer:
    """Converts loop-language source text into a stream of :class:`Token`."""

    def __init__(self, source: str):
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def _location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.position >= len(self.source):
                return
            if self.source[self.position] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.position += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.position < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.position < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.position >= len(self.source):
                    raise LexerError("unterminated block comment", self._location())
                self._advance(2)
            elif ch == "#":
                while self.position < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _scan_number(self) -> Token:
        location = self._location()
        start = self.position
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit() or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.position]
        return Token("float" if is_float else "int", text, location)

    def _scan_identifier(self) -> Token:
        location = self._location()
        start = self.position
        while _is_ident_char(self._peek()):
            self._advance()
        text = self.source[start : self.position]
        kind = "keyword" if text in KEYWORDS else "ident"
        return Token(kind, text, location)

    def _scan_string(self) -> Token:
        location = self._location()
        quote = self._peek()
        self._advance()
        chars: list[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise LexerError("unterminated string literal", location)
            if ch == quote:
                self._advance()
                break
            if ch == "\\":
                self._advance()
                escaped = self._peek()
                escapes = {"n": "\n", "t": "\t", "\\": "\\", '"': '"', "'": "'"}
                chars.append(escapes.get(escaped, escaped))
                self._advance()
            else:
                chars.append(ch)
                self._advance()
        return Token("string", "".join(chars), location)

    def _scan_symbol(self) -> Token:
        location = self._location()
        for symbol in MULTI_CHAR_SYMBOLS:
            if self.source.startswith(symbol, self.position):
                self._advance(len(symbol))
                return Token("symbol", symbol, location)
        ch = self._peek()
        if ch in SINGLE_CHAR_SYMBOLS:
            self._advance()
            return Token("symbol", ch, location)
        raise LexerError(f"unexpected character {ch!r}", location)

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until end of input, ending with a single ``eof``."""
        while True:
            self._skip_whitespace_and_comments()
            if self.position >= len(self.source):
                yield Token("eof", "", self._location())
                return
            ch = self._peek()
            if ch.isdigit():
                yield self._scan_number()
            elif _is_ident_start(ch):
                yield self._scan_identifier()
            elif ch in "\"'":
                yield self._scan_string()
            else:
                yield self._scan_symbol()


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` and return the full token list (including ``eof``)."""
    return list(Lexer(source).tokens())
