"""The loop-based source language of the paper (Figure 1).

This package contains everything needed to go from the textual form of an
array-based loop program to an abstract syntax tree and back, plus a reference
sequential interpreter used as the correctness oracle for the translator:

* :mod:`repro.loop_lang.ast` -- AST node definitions (types, expressions,
  L-values, statements).
* :mod:`repro.loop_lang.lexer` / :mod:`repro.loop_lang.parser` -- concrete
  syntax (the syntax used by the programs in Appendix B of the paper).
* :mod:`repro.loop_lang.pretty` -- pretty printer (round-trips with the
  parser).
* :mod:`repro.loop_lang.interpreter` -- sequential reference semantics.
* :mod:`repro.loop_lang.python_frontend` -- builds loop ASTs from a restricted
  subset of Python functions using the standard :mod:`ast` module.
"""

from repro.loop_lang import ast
from repro.loop_lang.parser import parse_program, parse_expression
from repro.loop_lang.pretty import pretty_program, pretty_expr, pretty_stmt
from repro.loop_lang.interpreter import Interpreter, interpret_program
from repro.loop_lang.python_frontend import from_python_function, from_python_source

__all__ = [
    "ast",
    "parse_program",
    "parse_expression",
    "pretty_program",
    "pretty_expr",
    "pretty_stmt",
    "Interpreter",
    "interpret_program",
    "from_python_function",
    "from_python_source",
]
