"""Abstract syntax tree of the loop-based language (Figure 1 of the paper).

The language distinguishes three syntactic categories:

* **Types** -- basic types (``int``, ``long``, ``double``, ``bool``,
  ``string``), parametric collection types (``vector[t]``, ``matrix[t]``,
  ``map[k, v]``, ``bag[t]``), tuple types and record types.
* **Expressions** -- destinations (L-values), binary/unary operations, tuple
  and record construction, function calls and constants.
* **Statements** -- incremental updates ``d ⊕= e``, plain assignments
  ``d := e``, variable declarations, the two parallelizable ``for`` loops
  (range iteration and collection traversal), sequential ``while`` loops,
  conditionals and statement blocks.

All nodes are immutable dataclasses so they can be hashed, compared
structurally and shared freely between compiler passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.errors import SourceLocation

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """Base class of loop-language types."""


@dataclass(frozen=True)
class BasicType(Type):
    """A scalar type such as ``int``, ``double``, ``bool`` or ``string``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ParametricType(Type):
    """A collection type, e.g. ``vector[double]`` or ``map[string, int]``."""

    constructor: str
    parameters: tuple[Type, ...]

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.parameters)
        return f"{self.constructor}[{params}]"


@dataclass(frozen=True)
class TupleType(Type):
    """A tuple type ``(t1, ..., tn)``."""

    elements: tuple[Type, ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(t) for t in self.elements) + ")"


@dataclass(frozen=True)
class RecordType(Type):
    """A record type ``<A1: t1, ..., An: tn>``."""

    fields: tuple[tuple[str, Type], ...]

    def __str__(self) -> str:
        inner = ", ".join(f"{name}: {typ}" for name, typ in self.fields)
        return f"<{inner}>"


INT = BasicType("int")
LONG = BasicType("long")
DOUBLE = BasicType("double")
BOOL = BasicType("bool")
STRING = BasicType("string")

#: Type constructors that denote arrays (indexed collections).  ``vector`` and
#: ``map`` take one index, ``matrix`` takes two.
ARRAY_CONSTRUCTORS = {"vector": 1, "matrix": 2, "map": 1, "array": 1}


def vector_of(element: Type) -> ParametricType:
    """Build the type ``vector[element]``."""
    return ParametricType("vector", (element,))


def matrix_of(element: Type) -> ParametricType:
    """Build the type ``matrix[element]``."""
    return ParametricType("matrix", (element,))


def map_of(key: Type, value: Type) -> ParametricType:
    """Build the type ``map[key, value]``."""
    return ParametricType("map", (key, value))


def bag_of(element: Type) -> ParametricType:
    """Build the type ``bag[element]`` (an unindexed collection)."""
    return ParametricType("bag", (element,))


def is_array_type(typ: Type) -> bool:
    """Return True when ``typ`` denotes an indexed (array-like) collection."""
    return isinstance(typ, ParametricType) and typ.constructor in ARRAY_CONSTRUCTORS


def is_collection_type(typ: Type) -> bool:
    """Return True when ``typ`` is any collection (arrays and bags)."""
    return isinstance(typ, ParametricType)


def array_rank(typ: Type) -> int:
    """Number of index dimensions of an array type (0 for non-arrays)."""
    if not is_array_type(typ):
        return 0
    assert isinstance(typ, ParametricType)
    return ARRAY_CONSTRUCTORS[typ.constructor]


# ---------------------------------------------------------------------------
# Expressions and destinations (L-values)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class of loop-language expressions."""

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions (used by generic traversals)."""
        return ()


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant: int, float, bool or string."""

    value: Union[int, float, bool, str]

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A variable reference.  Also a destination (L-value)."""

    name: str
    location: SourceLocation = field(default_factory=SourceLocation, compare=False)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Project(Expr):
    """A record projection ``d.A``.  Also a destination (L-value)."""

    base: Expr
    attribute: str

    def children(self) -> tuple[Expr, ...]:
        return (self.base,)

    def __str__(self) -> str:
        return f"{self.base}.{self.attribute}"


@dataclass(frozen=True)
class Index(Expr):
    """An array indexing ``v[e1, ..., en]``.  Also a destination (L-value)."""

    array: Expr
    indices: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return (self.array,) + self.indices

    def __str__(self) -> str:
        inner = ", ".join(str(i) for i in self.indices)
        return f"{self.array}[{inner}]"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation ``e1 ⋆ e2`` for any operator ⋆."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """A unary operation such as ``-e`` or ``!e``."""

    op: str
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class TupleExpr(Expr):
    """A tuple construction ``(e1, ..., en)``."""

    elements: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.elements

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.elements) + ")"


@dataclass(frozen=True)
class RecordExpr(Expr):
    """A record construction ``<A1 = e1, ..., An = en>``."""

    fields: tuple[tuple[str, Expr], ...]

    def children(self) -> tuple[Expr, ...]:
        return tuple(e for _, e in self.fields)

    def __str__(self) -> str:
        inner = ", ".join(f"{name} = {e}" for name, e in self.fields)
        return f"<{inner}>"


@dataclass(frozen=True)
class Call(Expr):
    """A call to a registered scalar function, e.g. ``sqrt(x)``.

    The loop language has no user-defined functions of its own; calls refer to
    functions registered with the compiler/interpreter (math functions, record
    constructors such as ``ArgMin`` in the KMeans program, distance functions,
    and so on).
    """

    function: str
    arguments: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.arguments

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.arguments)
        return f"{self.function}({inner})"


#: The union of expression forms that may appear as an assignment destination.
Destination = (Var, Project, Index)


def is_destination(expr: Expr) -> bool:
    """Return True when ``expr`` is syntactically an L-value.

    An L-value is a variable, a record projection whose base is an L-value, or
    an array indexing whose array is an L-value (Figure 1).
    """
    if isinstance(expr, Var):
        return True
    if isinstance(expr, Project):
        return is_destination(expr.base)
    if isinstance(expr, Index):
        return is_destination(expr.array)
    return False


def destination_root(dest: Expr) -> Var:
    """Return the root variable of an L-value (e.g. ``V`` for ``V[i].A``)."""
    node = dest
    while True:
        if isinstance(node, Var):
            return node
        if isinstance(node, Project):
            node = node.base
        elif isinstance(node, Index):
            node = node.array
        else:
            raise TypeError(f"not a destination: {dest!r}")


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    """Base class of loop-language statements.

    ``location`` carries the 1-based source position the statement came from
    (set by the parser and the Python frontend, default unknown); it is
    excluded from equality/hash so structural comparisons in rewrites and
    tests ignore provenance.
    """

    location: SourceLocation = field(
        default_factory=SourceLocation, compare=False, repr=False, kw_only=True
    )

    def substatements(self) -> tuple["Stmt", ...]:
        """Direct sub-statements (used by generic traversals)."""
        return ()


@dataclass(frozen=True)
class IncrementalUpdate(Stmt):
    """An incremental update ``d ⊕= e`` for a commutative operation ⊕.

    Equivalent to ``d := d ⊕ e``, but recognized specially by the translator:
    it becomes a group-by over the destination index followed by a ⊕-reduction
    (Section 3.7).
    """

    destination: Expr
    op: str
    value: Expr

    def __str__(self) -> str:
        return f"{self.destination} {self.op}= {self.value};"


@dataclass(frozen=True)
class Assign(Stmt):
    """A plain (non-incremental) assignment ``d := e``."""

    destination: Expr
    value: Expr

    def __str__(self) -> str:
        return f"{self.destination} := {self.value};"


@dataclass(frozen=True)
class VarDecl(Stmt):
    """A variable declaration ``var v: t = e``.

    Declarations cannot appear inside for-loops (Section 3.1).
    """

    name: str
    type: Type
    init: Expr

    def __str__(self) -> str:
        return f"var {self.name}: {self.type} = {self.init};"


@dataclass(frozen=True)
class ForRange(Stmt):
    """A range iteration ``for v = e1, e2 do s`` (bounds are inclusive)."""

    variable: str
    lower: Expr
    upper: Expr
    body: Stmt

    def substatements(self) -> tuple[Stmt, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"for {self.variable} = {self.lower}, {self.upper} do {self.body}"


@dataclass(frozen=True)
class ForIn(Stmt):
    """A collection traversal ``for v in e do s``."""

    variable: str
    source: Expr
    body: Stmt

    def substatements(self) -> tuple[Stmt, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"for {self.variable} in {self.source} do {self.body}"


@dataclass(frozen=True)
class While(Stmt):
    """A sequential loop ``while (e) s``; never parallelized (Section 3.1)."""

    condition: Expr
    body: Stmt

    def substatements(self) -> tuple[Stmt, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"while ({self.condition}) {self.body}"


@dataclass(frozen=True)
class If(Stmt):
    """A conditional ``if (e) s1 [else s2]``."""

    condition: Expr
    then_branch: Stmt
    else_branch: Stmt | None = None

    def substatements(self) -> tuple[Stmt, ...]:
        if self.else_branch is None:
            return (self.then_branch,)
        return (self.then_branch, self.else_branch)

    def __str__(self) -> str:
        text = f"if ({self.condition}) {self.then_branch}"
        if self.else_branch is not None:
            text += f" else {self.else_branch}"
        return text


@dataclass(frozen=True)
class Block(Stmt):
    """A statement block ``{ s1; ...; sn }``."""

    statements: tuple[Stmt, ...]

    def substatements(self) -> tuple[Stmt, ...]:
        return self.statements

    def __str__(self) -> str:
        return "{ " + " ".join(str(s) for s in self.statements) + " }"


@dataclass(frozen=True)
class Program:
    """A complete loop-language program: a sequence of top-level statements."""

    statements: tuple[Stmt, ...]

    def __str__(self) -> str:
        return "\n".join(str(s) for s in self.statements)

    def as_block(self) -> Block:
        """View the program as a single statement block."""
        return Block(self.statements)


# ---------------------------------------------------------------------------
# Generic traversals
# ---------------------------------------------------------------------------


def walk_expressions(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk_expressions(child)


def walk_statements(stmt: Stmt) -> Iterator[Stmt]:
    """Yield ``stmt`` and every sub-statement, pre-order."""
    yield stmt
    for child in stmt.substatements():
        yield from walk_statements(child)


def statement_expressions(stmt: Stmt) -> Iterator[Expr]:
    """Yield the expressions directly contained in ``stmt`` (not recursive
    into sub-statements)."""
    if isinstance(stmt, IncrementalUpdate):
        yield stmt.destination
        yield stmt.value
    elif isinstance(stmt, Assign):
        yield stmt.destination
        yield stmt.value
    elif isinstance(stmt, VarDecl):
        yield stmt.init
    elif isinstance(stmt, ForRange):
        yield stmt.lower
        yield stmt.upper
    elif isinstance(stmt, ForIn):
        yield stmt.source
    elif isinstance(stmt, While):
        yield stmt.condition
    elif isinstance(stmt, If):
        yield stmt.condition


def free_variables(expr: Expr) -> set[str]:
    """The set of variable names referenced anywhere inside ``expr``."""
    names: set[str] = set()
    for node in walk_expressions(expr):
        if isinstance(node, Var):
            names.add(node.name)
    return names


def substitute(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Replace every free variable named in ``mapping`` by its expression.

    The loop language has no variable binders inside expressions, so this is a
    plain structural substitution.
    """
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Project):
        return Project(substitute(expr.base, mapping), expr.attribute)
    if isinstance(expr, Index):
        return Index(
            substitute(expr.array, mapping),
            tuple(substitute(i, mapping) for i in expr.indices),
        )
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, substitute(expr.operand, mapping))
    if isinstance(expr, TupleExpr):
        return TupleExpr(tuple(substitute(e, mapping) for e in expr.elements))
    if isinstance(expr, RecordExpr):
        return RecordExpr(tuple((n, substitute(e, mapping)) for n, e in expr.fields))
    if isinstance(expr, Call):
        return Call(expr.function, tuple(substitute(a, mapping) for a in expr.arguments))
    raise TypeError(f"unknown expression node: {expr!r}")


def rename_loop_variable(stmt: Stmt, old: str, new: str) -> Stmt:
    """Rename a loop index variable ``old`` to ``new`` inside ``stmt``.

    Used to guarantee that every for-loop has a distinct loop index variable
    (Section 3.2 requires this before dependence analysis).
    """
    mapping = {old: Var(new)}

    def rename_expr(e: Expr) -> Expr:
        return substitute(e, mapping)

    loc = stmt.location
    if isinstance(stmt, IncrementalUpdate):
        return IncrementalUpdate(
            rename_expr(stmt.destination), stmt.op, rename_expr(stmt.value), location=loc
        )
    if isinstance(stmt, Assign):
        return Assign(rename_expr(stmt.destination), rename_expr(stmt.value), location=loc)
    if isinstance(stmt, VarDecl):
        return VarDecl(stmt.name, stmt.type, rename_expr(stmt.init), location=loc)
    if isinstance(stmt, ForRange):
        if stmt.variable == old:
            # The inner loop rebinds the name; do not rename inside.
            return ForRange(
                stmt.variable, rename_expr(stmt.lower), rename_expr(stmt.upper), stmt.body, location=loc
            )
        return ForRange(
            stmt.variable,
            rename_expr(stmt.lower),
            rename_expr(stmt.upper),
            rename_loop_variable(stmt.body, old, new),
            location=loc,
        )
    if isinstance(stmt, ForIn):
        if stmt.variable == old:
            return ForIn(stmt.variable, rename_expr(stmt.source), stmt.body, location=loc)
        return ForIn(
            stmt.variable, rename_expr(stmt.source), rename_loop_variable(stmt.body, old, new), location=loc
        )
    if isinstance(stmt, While):
        return While(rename_expr(stmt.condition), rename_loop_variable(stmt.body, old, new), location=loc)
    if isinstance(stmt, If):
        else_branch = None
        if stmt.else_branch is not None:
            else_branch = rename_loop_variable(stmt.else_branch, old, new)
        return If(
            rename_expr(stmt.condition),
            rename_loop_variable(stmt.then_branch, old, new),
            else_branch,
            location=loc,
        )
    if isinstance(stmt, Block):
        return Block(tuple(rename_loop_variable(s, old, new) for s in stmt.statements), location=loc)
    raise TypeError(f"unknown statement node: {stmt!r}")


def declared_variables(program: Program) -> dict[str, Type]:
    """Collect ``var`` declarations appearing anywhere in ``program``."""
    declared: dict[str, Type] = {}
    for stmt in program.statements:
        for node in walk_statements(stmt):
            if isinstance(node, VarDecl):
                declared[node.name] = node.type
    return declared


def loop_index_variables(stmt: Stmt) -> set[str]:
    """All loop index variables bound by for-loops inside ``stmt``."""
    names: set[str] = set()
    for node in walk_statements(stmt):
        if isinstance(node, (ForRange, ForIn)):
            names.add(node.variable)
    return names
