"""Sequential reference interpreter for the loop-based language.

The interpreter defines the *ground truth* semantics of a loop program: the
translator of Figure 2 is meaning preserving exactly when the distributed
evaluation of the generated target code produces the same final variable
values as this interpreter (Theorem A.1).  The test suite uses it both as a
correctness oracle and as the "sequential" column of Table 2.

Runtime representation of loop-language values:

* scalars -- plain Python ``int`` / ``float`` / ``bool`` / ``str``;
* sparse vectors, matrices and key-value maps -- Python ``dict`` mapping the
  index (an ``int`` or a tuple of ``int``) to the stored value;
* bags -- Python ``list``;
* tuples -- Python ``tuple``; records -- Python ``dict`` keyed by field name
  (or any object exposing the fields as attributes).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable

from repro.comprehension.monoids import DEFAULT_MONOIDS, MonoidRegistry
from repro.errors import InterpreterError
from repro.functions import DEFAULT_FUNCTIONS, FunctionRegistry
from repro.loop_lang import ast

#: Safety valve for ``while`` loops so that buggy programs cannot hang tests.
MAX_WHILE_ITERATIONS = 10_000_000


class Interpreter:
    """Evaluates loop-language programs sequentially.

    Args:
        functions: scalar function registry (defaults to the built-ins).
        monoids: commutative monoid registry (defaults to the built-ins).
        missing_default: value returned when reading an array index that is
            not present.  The paper treats sparse arrays as zero-filled, so the
            default is ``0``; pass ``None`` to raise an error instead.
    """

    def __init__(
        self,
        functions: FunctionRegistry | None = None,
        monoids: MonoidRegistry | None = None,
        missing_default: Any = 0,
    ):
        self.functions = functions or DEFAULT_FUNCTIONS
        self.monoids = monoids or DEFAULT_MONOIDS
        self.missing_default = missing_default

    # -- public API ----------------------------------------------------------

    def run(self, program: ast.Program, env: dict[str, Any] | None = None) -> dict[str, Any]:
        """Execute ``program`` over a copy of ``env`` and return the final state.

        Array-valued inputs are shallow-copied so callers can reuse them.
        """
        state: dict[str, Any] = {}
        for name, value in (env or {}).items():
            state[name] = dict(value) if isinstance(value, dict) else value
        self._execute_block(program.statements, state)
        return state

    # -- statements ----------------------------------------------------------

    def _execute_block(self, statements: Iterable[ast.Stmt], state: dict[str, Any]) -> None:
        for stmt in statements:
            self._execute(stmt, state)

    def _execute(self, stmt: ast.Stmt, state: dict[str, Any]) -> None:
        if isinstance(stmt, ast.VarDecl):
            state[stmt.name] = self._evaluate(stmt.init, state)
        elif isinstance(stmt, ast.Assign):
            value = self._evaluate(stmt.value, state)
            self._store(stmt.destination, value, state)
        elif isinstance(stmt, ast.IncrementalUpdate):
            self._execute_incremental(stmt, state)
        elif isinstance(stmt, ast.ForRange):
            lower = self._int(self._evaluate(stmt.lower, state), "for-loop lower bound")
            upper = self._int(self._evaluate(stmt.upper, state), "for-loop upper bound")
            for value in range(lower, upper + 1):
                state[stmt.variable] = value
                self._execute(stmt.body, state)
        elif isinstance(stmt, ast.ForIn):
            collection = self._evaluate(stmt.source, state)
            for element in self._iterate(collection):
                state[stmt.variable] = element
                self._execute(stmt.body, state)
        elif isinstance(stmt, ast.While):
            iterations = 0
            while self._truthy(self._evaluate(stmt.condition, state)):
                self._execute(stmt.body, state)
                iterations += 1
                if iterations > MAX_WHILE_ITERATIONS:
                    raise InterpreterError("while loop exceeded the iteration limit")
        elif isinstance(stmt, ast.If):
            if self._truthy(self._evaluate(stmt.condition, state)):
                self._execute(stmt.then_branch, state)
            elif stmt.else_branch is not None:
                self._execute(stmt.else_branch, state)
        elif isinstance(stmt, ast.Block):
            self._execute_block(stmt.statements, state)
        else:
            raise InterpreterError(f"unknown statement node: {stmt!r}")

    def _execute_incremental(self, stmt: ast.IncrementalUpdate, state: dict[str, Any]) -> None:
        value = self._evaluate(stmt.value, state)
        if stmt.op in self.monoids:
            monoid = self.monoids.get(stmt.op)
            current = self._load_for_update(stmt.destination, state, monoid.identity())
            updated = monoid.combine(current, value)
        else:
            # Non-monoid compound operators (e.g. "-=") still have sequential
            # meaning d := d op e; the translator will reject them separately.
            current = self._load_for_update(stmt.destination, state, 0)
            updated = self._apply_binop(stmt.op, current, value)
        self._store(stmt.destination, updated, state)

    # -- expressions ---------------------------------------------------------

    def _evaluate(self, expr: ast.Expr, state: dict[str, Any]) -> Any:
        if isinstance(expr, ast.Const):
            return expr.value
        if isinstance(expr, ast.Var):
            if expr.name not in state:
                raise InterpreterError(f"undefined variable {expr.name!r}")
            return state[expr.name]
        if isinstance(expr, ast.Project):
            return self._project(self._evaluate(expr.base, state), expr.attribute)
        if isinstance(expr, ast.Index):
            array = self._evaluate(expr.array, state)
            key = self._index_key(expr, state)
            return self._read_index(array, key, expr)
        if isinstance(expr, ast.BinOp):
            return self._evaluate_binop(expr, state)
        if isinstance(expr, ast.UnaryOp):
            operand = self._evaluate(expr.operand, state)
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                return not self._truthy(operand)
            raise InterpreterError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.TupleExpr):
            return tuple(self._evaluate(e, state) for e in expr.elements)
        if isinstance(expr, ast.RecordExpr):
            return {name: self._evaluate(e, state) for name, e in expr.fields}
        if isinstance(expr, ast.Call):
            if expr.function not in self.functions:
                raise InterpreterError(f"unknown function {expr.function!r}")
            function = self.functions.get(expr.function)
            arguments = [self._evaluate(a, state) for a in expr.arguments]
            return function(*arguments)
        raise InterpreterError(f"unknown expression node: {expr!r}")

    def _evaluate_binop(self, expr: ast.BinOp, state: dict[str, Any]) -> Any:
        if expr.op == "&&":
            return self._truthy(self._evaluate(expr.left, state)) and self._truthy(
                self._evaluate(expr.right, state)
            )
        if expr.op == "||":
            return self._truthy(self._evaluate(expr.left, state)) or self._truthy(
                self._evaluate(expr.right, state)
            )
        left = self._evaluate(expr.left, state)
        right = self._evaluate(expr.right, state)
        return self._apply_binop(expr.op, left, right)

    def _apply_binop(self, op: str, left: Any, right: Any) -> Any:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                return left // right if left % right == 0 else left / right
            return left / right
        if op == "%":
            return left % right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op in self.monoids:
            return self.monoids.get(op).combine(left, right)
        raise InterpreterError(f"unknown binary operator {op!r}")

    # -- destinations --------------------------------------------------------

    def _index_key(self, expr: ast.Index, state: dict[str, Any]) -> Any:
        values = [self._evaluate(i, state) for i in expr.indices]
        if len(values) == 1:
            return values[0]
        return tuple(values)

    def _read_index(self, array: Any, key: Any, expr: ast.Index) -> Any:
        if isinstance(array, (list, tuple)):
            # Plain sequences are read-only arrays indexed by position, the
            # same convention the distributed runner uses for list inputs.
            if isinstance(key, int) and 0 <= key < len(array):
                return array[key]
            if self.missing_default is None:
                raise InterpreterError(f"missing array entry {expr.array}[{key!r}]")
            return self.missing_default
        if not isinstance(array, dict):
            raise InterpreterError(f"cannot index non-array value in {expr}")
        if key in array:
            return array[key]
        if self.missing_default is None:
            raise InterpreterError(f"missing array entry {expr.array}[{key!r}]")
        return self.missing_default

    def _load_for_update(self, dest: ast.Expr, state: dict[str, Any], identity: Any) -> Any:
        """Current value of ``dest`` or ``identity`` if not present."""
        if isinstance(dest, ast.Var):
            if dest.name in state and state[dest.name] is not None:
                return state[dest.name]
            return identity
        if isinstance(dest, ast.Index):
            array = self._evaluate(dest.array, state)
            key = self._index_key(dest, state)
            if isinstance(array, dict) and key in array:
                return array[key]
            return identity
        if isinstance(dest, ast.Project):
            base = self._evaluate(dest.base, state)
            try:
                return self._project(base, dest.attribute)
            except InterpreterError:
                return identity
        raise InterpreterError(f"invalid update destination {dest!r}")

    def _store(self, dest: ast.Expr, value: Any, state: dict[str, Any]) -> None:
        if isinstance(dest, ast.Var):
            state[dest.name] = value
            return
        if isinstance(dest, ast.Index):
            array = self._evaluate(dest.array, state)
            if not isinstance(array, dict):
                raise InterpreterError(f"cannot assign into non-array value in {dest}")
            key = self._index_key(dest, state)
            array[key] = value
            return
        if isinstance(dest, ast.Project):
            base = self._evaluate(dest.base, state)
            if isinstance(base, dict):
                base[dest.attribute] = value
                return
            if dataclasses.is_dataclass(base):
                setattr(base, dest.attribute, value)
                return
            raise InterpreterError(f"cannot assign field {dest.attribute!r} of {base!r}")
        raise InterpreterError(f"invalid assignment destination {dest!r}")

    # -- helpers --------------------------------------------------------------

    def _project(self, value: Any, attribute: str) -> Any:
        if isinstance(value, dict):
            if attribute in value:
                return value[attribute]
            raise InterpreterError(f"record has no field {attribute!r}: {value!r}")
        if isinstance(value, tuple) and attribute.startswith("_"):
            try:
                position = int(attribute[1:]) - 1
            except ValueError as exc:
                raise InterpreterError(f"bad tuple projection {attribute!r}") from exc
            if 0 <= position < len(value):
                return value[position]
            raise InterpreterError(f"tuple projection {attribute!r} out of range for {value!r}")
        if hasattr(value, attribute):
            return getattr(value, attribute)
        raise InterpreterError(f"cannot project field {attribute!r} from {value!r}")

    @staticmethod
    def _iterate(collection: Any) -> Iterable[Any]:
        if isinstance(collection, dict):
            return list(collection.values())
        if isinstance(collection, (list, tuple, set)):
            return list(collection)
        raise InterpreterError(f"cannot iterate over {collection!r}")

    @staticmethod
    def _truthy(value: Any) -> bool:
        return bool(value)

    @staticmethod
    def _int(value: Any, what: str) -> int:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise InterpreterError(f"{what} must be numeric, got {value!r}")
        return int(value)


def interpret_program(
    source_or_program: str | ast.Program,
    env: dict[str, Any] | None = None,
    functions: FunctionRegistry | None = None,
    monoids: MonoidRegistry | None = None,
    missing_default: Any = 0,
) -> dict[str, Any]:
    """Parse (if necessary) and interpret a loop program, returning final state."""
    from repro.loop_lang.parser import parse_program

    if isinstance(source_or_program, str):
        program = parse_program(source_or_program)
    else:
        program = source_or_program
    interpreter = Interpreter(functions=functions, monoids=monoids, missing_default=missing_default)
    return interpreter.run(program, env)
