"""Builds loop-language ASTs from a restricted subset of Python.

The paper's loop language is "a proof-of-concept loop-based language; many
other languages, such as Java or C, can be used instead" (Section 3.1).  This
frontend plays that role for Python: a function written with plain loops,
array indexing and incremental updates is converted -- via the standard
:mod:`ast` module -- into the same loop-language AST that the textual parser
produces, after which the whole DIABLO pipeline (restriction checking,
translation, optimization, DISC execution) applies unchanged.

Supported Python constructs:

* ``for i in range(a, b)`` / ``range(n)``  -> range iteration (upper bound is
  exclusive in Python, inclusive in the loop language; the frontend adjusts);
* ``for x in V:``                           -> collection traversal;
* ``while cond:`` and ``if/else``;
* assignments ``x = e``, ``A[i] = e``, ``A[i, j] = e`` and annotated
  declarations ``x: float = 0.0`` / ``R: Matrix = Matrix()``;
* augmented assignments ``+=``, ``*=`` (incremental updates);
* arithmetic / comparison / boolean operators, function calls, tuples,
  attribute access and constants;
* ``return name`` / ``return a, b`` as the **final** statement of a function
  (consumed by the :mod:`repro.api` jit layer; see :class:`FunctionSpec`).

Anything else (nested functions, comprehensions, a ``return`` before the
function tail, ``break``/``continue``) is rejected with a
:class:`FrontendError` carrying the offending source line number.
"""

from __future__ import annotations

import ast as python_ast
import dataclasses
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable, NoReturn

from repro.errors import DiabloError, SourceLocation
from repro.loop_lang import ast as loop_ast


class FrontendError(DiabloError):
    """Raised when a Python function uses constructs outside the supported subset.

    Attributes:
        line: 1-based line number of the offending construct inside the
            (dedented) source handed to the frontend, or None when unknown.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"{message} (line {line})"
        super().__init__(message)


def _reject(node: python_ast.AST, message: str) -> NoReturn:
    raise FrontendError(message, line=getattr(node, "lineno", None))


_BINOP_SYMBOLS = {
    python_ast.Add: "+",
    python_ast.Sub: "-",
    python_ast.Mult: "*",
    python_ast.Div: "/",
    python_ast.Mod: "%",
    python_ast.BitXor: "^",
    python_ast.Pow: "**",
}

_COMPARE_SYMBOLS = {
    python_ast.Eq: "==",
    python_ast.NotEq: "!=",
    python_ast.Lt: "<",
    python_ast.LtE: "<=",
    python_ast.Gt: ">",
    python_ast.GtE: ">=",
}

_TYPE_NAMES = {
    "int": loop_ast.INT,
    "float": loop_ast.DOUBLE,
    "bool": loop_ast.BOOL,
    "str": loop_ast.STRING,
}

#: Bare collection annotations (``R: Matrix = Matrix()``); element types
#: default to the translator's standard sparse representation.  This is the
#: single source of truth for those defaults -- the ``Vector`` / ``Matrix`` /
#: ``Map`` / ``Bag`` parameter-annotation markers in :mod:`repro.api.types`
#: derive from it, so a parameter annotation and a body declaration of the
#: same constructor always agree.
COLLECTION_ANNOTATION_TYPES: dict[str, loop_ast.ParametricType] = {
    "vector": loop_ast.vector_of(loop_ast.DOUBLE),
    "matrix": loop_ast.matrix_of(loop_ast.DOUBLE),
    "map": loop_ast.map_of(loop_ast.LONG, loop_ast.DOUBLE),
    "dict": loop_ast.map_of(loop_ast.LONG, loop_ast.DOUBLE),
    "bag": loop_ast.bag_of(loop_ast.DOUBLE),
}

#: Python-level spellings of the loop language's collection constructors.
_CALL_ALIASES = {"dict": "map", "Map": "map", "Vector": "vector", "Matrix": "matrix", "Bag": "bag"}


@dataclass(frozen=True)
class FunctionSpec:
    """A Python function converted to a loop program, plus its signature facts.

    The jit API (:mod:`repro.api`) compiles ``program`` through the regular
    pipeline, binds call arguments to ``parameters``, and maps the result
    environment back to ``returns``.

    Attributes:
        name: the Python function name (``"<module>"`` for bare source).
        parameters: parameter names in declaration order; they become free
            (input) variables of the loop program.
        program: the converted loop-language program (tail ``return`` removed).
        returns: variable names returned by a tail ``return``, or None when
            the function does not return a value.
        returns_tuple: True when the tail return was a tuple expression
            (``return a, b`` -- the call result is then always a tuple, even
            for a single name).
    """

    name: str
    parameters: tuple[str, ...]
    program: loop_ast.Program
    returns: tuple[str, ...] | None = None
    returns_tuple: bool = False


def from_python_function(function: Callable) -> loop_ast.Program:
    """Convert a Python function into a loop-language program.

    The function's parameters become free (input) variables of the loop
    program; its body becomes the program statements.  A tail ``return`` of
    variable names is accepted and dropped from the program -- the returned
    variables remain available in the result environment; use
    :func:`parse_python_function` (or the jit API) to have them mapped back
    to a call result.
    """
    return parse_python_function(function).program


def from_python_source(source: str) -> loop_ast.Program:
    """Convert Python source text (a module or single function) into a program.

    Like :func:`from_python_function`, a tail ``return`` of names is accepted
    but only recorded by :func:`parse_python_source`; the program itself ends
    before it.
    """
    return parse_python_source(source).program


def parse_python_function(function: Callable) -> FunctionSpec:
    """Convert a Python function, keeping its signature and tail-return facts."""
    try:
        source = textwrap.dedent(inspect.getsource(function))
    except (OSError, TypeError) as error:
        raise FrontendError(f"cannot read the source of {function!r}: {error}") from error
    return parse_python_source(source)


def parse_python_source(source: str) -> FunctionSpec:
    """Convert Python source text into a :class:`FunctionSpec`."""
    module = python_ast.parse(textwrap.dedent(source))
    body = module.body
    name = "<module>"
    parameters: tuple[str, ...] = ()
    if len(body) == 1 and isinstance(body[0], python_ast.FunctionDef):
        function = body[0]
        name = function.name
        if function.args.vararg or function.args.kwarg:
            _reject(function, "*args / **kwargs parameters are not supported")
        parameters = tuple(
            argument.arg
            for argument in (
                *function.args.posonlyargs,
                *function.args.args,
                *function.args.kwonlyargs,
            )
        )
        statements = function.body
    else:
        statements = body
    returns: tuple[str, ...] | None = None
    returns_tuple = False
    if (
        statements
        and isinstance(statements[-1], python_ast.Return)
        and statements[-1].value is not None
    ):
        returns, returns_tuple = _convert_return(statements[-1])
        statements = statements[:-1]
    converted = [_convert_statement(stmt) for stmt in statements]
    flattened = tuple(s for s in converted if s is not None)
    return FunctionSpec(name, parameters, loop_ast.Program(flattened), returns, returns_tuple)


def _convert_return(node: python_ast.Return) -> tuple[tuple[str, ...], bool]:
    value = node.value
    if isinstance(value, python_ast.Name):
        return (value.id,), False
    if (
        isinstance(value, python_ast.Tuple)
        and value.elts
        and all(isinstance(element, python_ast.Name) for element in value.elts)
    ):
        return tuple(element.id for element in value.elts), True
    _reject(node, "return value must be a variable name or a tuple of variable names")


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


def _convert_statement(node: python_ast.stmt) -> loop_ast.Stmt | None:
    converted = _convert_statement_node(node)
    if converted is None:
        return None
    return _located(converted, node)


def _located(stmt: loop_ast.Stmt, node: python_ast.AST) -> loop_ast.Stmt:
    """Attach the Python node's source position to a converted statement."""
    line = getattr(node, "lineno", 0) or 0
    if line <= 0 or stmt.location.line > 0:
        return stmt
    column = getattr(node, "col_offset", 0) or 0
    return dataclasses.replace(stmt, location=SourceLocation(line, column + 1))


def _convert_statement_node(node: python_ast.stmt) -> loop_ast.Stmt | None:
    if isinstance(node, python_ast.AnnAssign):
        return _convert_declaration(node)
    if isinstance(node, python_ast.Assign):
        return _convert_assignment(node)
    if isinstance(node, python_ast.AugAssign):
        return _convert_augmented(node)
    if isinstance(node, python_ast.For):
        return _convert_for(node)
    if isinstance(node, python_ast.While):
        return _convert_while(node)
    if isinstance(node, python_ast.If):
        return _convert_if(node)
    if isinstance(node, python_ast.Expr) and isinstance(node.value, python_ast.Constant):
        # A bare docstring; ignore.
        return None
    if isinstance(node, python_ast.Pass):
        return None
    if isinstance(node, python_ast.Return):
        if node.value is None:
            return None
        _reject(node, "return with a value is only supported as the function's final statement")
    if isinstance(node, python_ast.Break):
        _reject(node, "break is not supported; loops must run to completion (Definition 3.1)")
    if isinstance(node, python_ast.Continue):
        _reject(node, "continue is not supported; guard the loop body with `if` instead")
    if isinstance(node, (python_ast.FunctionDef, python_ast.AsyncFunctionDef)):
        _reject(node, "nested function definitions are not supported")
    _reject(node, f"unsupported Python statement: {python_ast.dump(node)[:80]}")


def _convert_body(body: list[python_ast.stmt]) -> loop_ast.Stmt:
    converted = [_convert_statement(s) for s in body]
    statements = tuple(s for s in converted if s is not None)
    if len(statements) == 1:
        return statements[0]
    return loop_ast.Block(statements)


def _convert_declaration(node: python_ast.AnnAssign) -> loop_ast.Stmt:
    if not isinstance(node.target, python_ast.Name):
        _reject(node, "annotated declarations must target a simple name")
    if node.value is None:
        _reject(node, "annotated declarations must have an initializer")
    return loop_ast.VarDecl(
        node.target.id, _convert_annotation(node.annotation), _convert_expression(node.value)
    )


def _convert_annotation(node: python_ast.expr) -> loop_ast.Type:
    if isinstance(node, python_ast.Name):
        if node.id in _TYPE_NAMES:
            return _TYPE_NAMES[node.id]
        lowered = node.id.lower()
        if lowered in COLLECTION_ANNOTATION_TYPES:
            return COLLECTION_ANNOTATION_TYPES[lowered]
        return loop_ast.BasicType(lowered)
    if isinstance(node, python_ast.Subscript) and isinstance(node.value, python_ast.Name):
        constructor = node.value.id.lower()
        inner = node.slice
        parameters: list[loop_ast.Type] = []
        if isinstance(inner, python_ast.Tuple):
            parameters = [_convert_annotation(e) for e in inner.elts]
        else:
            parameters = [_convert_annotation(inner)]
        if constructor == "dict":
            constructor = "map"
        return loop_ast.ParametricType(constructor, tuple(parameters))
    if isinstance(node, python_ast.Constant) and isinstance(node.value, str):
        lowered = node.value.lower()
        if lowered in COLLECTION_ANNOTATION_TYPES:
            return COLLECTION_ANNOTATION_TYPES[lowered]
        return loop_ast.BasicType(lowered)
    _reject(node, f"unsupported type annotation: {python_ast.dump(node)[:80]}")


def _convert_assignment(node: python_ast.Assign) -> loop_ast.Stmt:
    if len(node.targets) != 1:
        _reject(node, "chained assignments are not supported")
    destination = _convert_expression(node.targets[0])
    if not loop_ast.is_destination(destination):
        _reject(node, f"invalid assignment destination: {destination}")
    value = _convert_expression(node.value)
    # dict() / {} initializers become variable declarations for key-value maps.
    if isinstance(node.value, python_ast.Dict) and not node.value.keys:
        return loop_ast.VarDecl(
            loop_ast.destination_root(destination).name,
            loop_ast.map_of(loop_ast.LONG, loop_ast.DOUBLE),
            loop_ast.Call("map", ()),
        )
    return loop_ast.Assign(destination, value)


def _convert_augmented(node: python_ast.AugAssign) -> loop_ast.Stmt:
    op_type = type(node.op)
    if op_type not in _BINOP_SYMBOLS:
        _reject(node, f"unsupported augmented operator: {op_type.__name__}")
    destination = _convert_expression(node.target)
    if not loop_ast.is_destination(destination):
        _reject(node, f"invalid update destination: {destination}")
    return loop_ast.IncrementalUpdate(destination, _BINOP_SYMBOLS[op_type], _convert_expression(node.value))


def _convert_for(node: python_ast.For) -> loop_ast.Stmt:
    if node.orelse:
        _reject(node, "for/else is not supported")
    if not isinstance(node.target, python_ast.Name):
        _reject(node, "for-loop targets must be simple names")
    variable = node.target.id
    body = _convert_body(node.body)
    iterator = node.iter
    if isinstance(iterator, python_ast.Call) and isinstance(iterator.func, python_ast.Name):
        if iterator.func.id == "range":
            arguments = [_convert_expression(a) for a in iterator.args]
            if len(arguments) == 1:
                lower: loop_ast.Expr = loop_ast.Const(0)
                upper = arguments[0]
            elif len(arguments) >= 2:
                lower, upper = arguments[0], arguments[1]
            else:
                _reject(iterator, "range() needs at least one argument")
            # Python's upper bound is exclusive, the loop language's inclusive.
            inclusive_upper = loop_ast.BinOp("-", upper, loop_ast.Const(1))
            if isinstance(upper, loop_ast.Const) and isinstance(upper.value, int):
                inclusive_upper = loop_ast.Const(upper.value - 1)
            return loop_ast.ForRange(variable, lower, inclusive_upper, body)
    return loop_ast.ForIn(variable, _convert_expression(iterator), body)


def _convert_while(node: python_ast.While) -> loop_ast.Stmt:
    if node.orelse:
        _reject(node, "while/else is not supported")
    return loop_ast.While(_convert_expression(node.test), _convert_body(node.body))


def _convert_if(node: python_ast.If) -> loop_ast.Stmt:
    then_branch = _convert_body(node.body)
    else_branch = _convert_body(node.orelse) if node.orelse else None
    if isinstance(else_branch, loop_ast.Block) and not else_branch.statements:
        else_branch = None
    return loop_ast.If(_convert_expression(node.test), then_branch, else_branch)


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


def _convert_expression(node: python_ast.expr) -> loop_ast.Expr:
    if isinstance(node, python_ast.Constant):
        if node.value is None:
            _reject(node, "None has no loop-language equivalent")
        return loop_ast.Const(node.value)
    if isinstance(node, python_ast.Name):
        return loop_ast.Var(node.id)
    if isinstance(node, python_ast.Attribute):
        return loop_ast.Project(_convert_expression(node.value), node.attr)
    if isinstance(node, python_ast.Subscript):
        array = _convert_expression(node.value)
        index = node.slice
        if isinstance(index, python_ast.Tuple):
            indices = tuple(_convert_expression(e) for e in index.elts)
        else:
            indices = (_convert_expression(index),)
        return loop_ast.Index(array, indices)
    if isinstance(node, python_ast.BinOp):
        op_type = type(node.op)
        if op_type not in _BINOP_SYMBOLS:
            _reject(node, f"unsupported binary operator: {op_type.__name__}")
        return loop_ast.BinOp(
            _BINOP_SYMBOLS[op_type], _convert_expression(node.left), _convert_expression(node.right)
        )
    if isinstance(node, python_ast.UnaryOp):
        if isinstance(node.op, python_ast.USub):
            operand = _convert_expression(node.operand)
            if isinstance(operand, loop_ast.Const) and isinstance(operand.value, (int, float)):
                return loop_ast.Const(-operand.value)
            return loop_ast.UnaryOp("-", operand)
        if isinstance(node.op, python_ast.Not):
            return loop_ast.UnaryOp("!", _convert_expression(node.operand))
        _reject(node, f"unsupported unary operator: {type(node.op).__name__}")
    if isinstance(node, python_ast.BoolOp):
        symbol = "&&" if isinstance(node.op, python_ast.And) else "||"
        result = _convert_expression(node.values[0])
        for value in node.values[1:]:
            result = loop_ast.BinOp(symbol, result, _convert_expression(value))
        return result
    if isinstance(node, python_ast.Compare):
        if len(node.ops) != 1 or len(node.comparators) != 1:
            _reject(node, "chained comparisons are not supported")
        op_type = type(node.ops[0])
        if op_type not in _COMPARE_SYMBOLS:
            _reject(node, f"unsupported comparison: {op_type.__name__}")
        return loop_ast.BinOp(
            _COMPARE_SYMBOLS[op_type],
            _convert_expression(node.left),
            _convert_expression(node.comparators[0]),
        )
    if isinstance(node, python_ast.Call):
        if isinstance(node.func, python_ast.Name):
            name = node.func.id
        elif isinstance(node.func, python_ast.Attribute):
            name = node.func.attr
        else:
            _reject(node, "unsupported call target")
        name = _CALL_ALIASES.get(name, name)
        return loop_ast.Call(name, tuple(_convert_expression(a) for a in node.args))
    if isinstance(node, python_ast.Tuple):
        return loop_ast.TupleExpr(tuple(_convert_expression(e) for e in node.elts))
    if isinstance(node, python_ast.Dict) and not node.keys:
        return loop_ast.Call("map", ())
    if isinstance(
        node,
        (python_ast.ListComp, python_ast.SetComp, python_ast.DictComp, python_ast.GeneratorExp),
    ):
        _reject(node, "comprehensions are not supported; write an explicit loop instead")
    if isinstance(node, python_ast.Lambda):
        _reject(node, "lambda expressions are not supported")
    _reject(node, f"unsupported Python expression: {python_ast.dump(node)[:80]}")
