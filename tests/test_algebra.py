"""Tests for the comprehension evaluator, the program runner and plan explanation."""

import pytest

from repro.algebra.evaluator import EvaluationEnvironment, TermEvaluator
from repro.algebra.explain import explain_term
from repro.algebra.runner import ProgramRunner
from repro.comprehension import ir
from repro.errors import ExecutionError
from repro.runtime.context import DistributedContext
from repro.translate.translator import DiabloCompiler


@pytest.fixture
def ctx():
    return DistributedContext(num_partitions=4)


def evaluator(ctx, **values):
    return TermEvaluator(EvaluationEnvironment(ctx, values))


class TestTermEvaluator:
    def test_scan_and_filter(self, ctx):
        # { v | (i, v) <- V, v > 10 }
        comp = ir.Comprehension(
            ir.CVar("v"),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.Condition(ir.CBinOp(">", ir.CVar("v"), ir.CConst(10))),
            ),
        )
        ev = evaluator(ctx, V=ctx.parallelize_pairs({0: 5, 1: 20, 2: 30}))
        assert sorted(ev.evaluate_bag(comp).collect()) == [20, 30]

    def test_equi_join_is_used(self, ctx):
        # { (a, b) | (i, a) <- X, (j, b) <- Y, j == i }
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("a"), ir.CVar("b"))),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("a"))), ir.CVar("X")),
                ir.Generator(ir.PTuple((ir.PVar("j"), ir.PVar("b"))), ir.CVar("Y")),
                ir.Condition(ir.CBinOp("==", ir.CVar("j"), ir.CVar("i"))),
            ),
        )
        ev = evaluator(
            ctx,
            X=ctx.parallelize_pairs({1: "a1", 2: "a2"}),
            Y=ctx.parallelize_pairs({2: "b2", 3: "b3"}),
        )
        result = ev.evaluate_bag(comp).collect()
        assert result == [("a2", "b2")]
        assert any("hash join" in entry for entry in ev.trace)

    def test_missing_join_key_uses_broadcast_product(self, ctx):
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("a"), ir.CVar("b"))),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("a"))), ir.CVar("X")),
                ir.Generator(ir.PTuple((ir.PVar("j"), ir.PVar("b"))), ir.CVar("Y")),
            ),
        )
        ev = evaluator(
            ctx,
            X=ctx.parallelize_pairs({1: "a"}),
            Y=ctx.parallelize_pairs({2: "b", 3: "c"}),
        )
        assert len(ev.evaluate_bag(comp).collect()) == 2
        assert any("broadcast" in entry for entry in ev.trace)

    def test_group_by_aggregation_uses_reduce_by_key(self, ctx):
        # { (k, +/v) | (i, v) <- V, group by k : v % 2 }
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("k"), ir.Aggregate("+", ir.CVar("v")))),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.GroupBy(ir.PVar("k"), ir.CBinOp("%", ir.CVar("v"), ir.CConst(2))),
            ),
        )
        ev = evaluator(ctx, V=ctx.parallelize_pairs({i: i for i in range(6)}))
        result = dict(ev.evaluate_bag(comp).collect())
        assert result == {0: 0 + 2 + 4, 1: 1 + 3 + 5}
        assert any("reduceByKey" in entry for entry in ev.trace)

    def test_general_group_by_lifts_variables(self, ctx):
        # { (k, v) | (i, v) <- V, group by k : i % 2 } -- v is lifted to a bag.
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("k"), ir.CVar("v"))),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.GroupBy(ir.PVar("k"), ir.CBinOp("%", ir.CVar("i"), ir.CConst(2))),
            ),
        )
        ev = evaluator(ctx, V=ctx.parallelize_pairs({i: i * 10 for i in range(4)}))
        result = {k: sorted(v) for k, v in ev.evaluate_bag(comp).collect()}
        assert result == {0: [0, 20], 1: [10, 30]}
        assert any("groupByKey" in entry for entry in ev.trace)

    def test_range_generator(self, ctx):
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("i"), ir.CConst(0))),
            (ir.Generator(ir.PVar("i"), ir.RangeTerm(ir.CConst(1), ir.CConst(3))),),
        )
        ev = evaluator(ctx)
        assert sorted(ev.evaluate_bag(comp).collect()) == [(1, 0), (2, 0), (3, 0)]

    def test_merge_terms(self, ctx):
        term = ir.Merge(ir.CVar("A"), ir.CVar("B"))
        ev = evaluator(ctx, A={1: 10, 2: 20}, B={2: 99})
        assert ev.evaluate_bag(term).collect_as_map() == {1: 10, 2: 99}

    def test_merge_with_terms(self, ctx):
        term = ir.MergeWith("+", ir.CVar("A"), ir.CVar("B"))
        ev = evaluator(ctx, A={1: 10}, B={1: 5, 2: 7})
        assert ev.evaluate_bag(term).collect_as_map() == {1: 15, 2: 7}

    def test_local_evaluation_of_scalar_terms(self, ctx):
        ev = evaluator(ctx, x=3)
        term = ir.CBinOp("*", ir.CVar("x"), ir.CConst(4))
        assert ev.evaluate(term) == 12

    def test_in_range_predicate(self, ctx):
        ev = evaluator(ctx)
        assert ev.evaluate_local(ir.InRange(ir.CConst(3), ir.CConst(1), ir.CConst(5)), {})
        assert not ev.evaluate_local(ir.InRange(ir.CConst(9), ir.CConst(1), ir.CConst(5)), {})

    def test_aggregate_over_empty_bag_is_identity(self, ctx):
        ev = evaluator(ctx, V=[])
        assert ev.evaluate_local(ir.Aggregate("+", ir.CVar("V")), {}) == 0

    def test_unknown_variable_raises(self, ctx):
        with pytest.raises(ExecutionError):
            evaluator(ctx).evaluate(ir.CVar("missing"))

    def test_condition_before_any_generator_can_empty_result(self, ctx):
        comp = ir.Comprehension(
            ir.CConst(1),
            (
                ir.Condition(ir.CBinOp(">", ir.CVar("n"), ir.CConst(10))),
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
            ),
        )
        ev = evaluator(ctx, n=5, V=ctx.parallelize_pairs({1: 1}))
        assert ev.evaluate(comp) == []


class TestProgramRunner:
    def test_missing_input_is_reported(self, ctx):
        compiled = DiabloCompiler().compile("var s: double = 0.0; for v in V do s += v;")
        runner = ProgramRunner(ctx)
        with pytest.raises(ExecutionError) as error:
            runner.run(compiled.target, {})
        assert "V" in str(error.value)

    def test_scalar_result_and_array_result(self, ctx):
        compiled = DiabloCompiler().compile(
            "var s: double = 0.0; var C: vector[double] = vector(); for v in V do { s += v; C[0] += v; }"
        )
        runner = ProgramRunner(ctx)
        result = runner.run(compiled.target, {"V": [1.0, 2.0]})
        assert result.scalar("s") == 3.0
        assert result.array("C") == {0: 3.0}

    def test_array_accessor_rejects_scalars(self, ctx):
        compiled = DiabloCompiler().compile("var s: double = 0.0; for v in V do s += v;")
        result = ProgramRunner(ctx).run(compiled.target, {"V": [1.0]})
        with pytest.raises(ExecutionError):
            result.array("s")

    def test_empty_collection_keeps_initial_scalar(self, ctx):
        compiled = DiabloCompiler().compile("var s: double = 42.0; for v in V do s += v;")
        result = ProgramRunner(ctx).run(compiled.target, {"V": []})
        assert result.scalar("s") == 42.0

    def test_while_loop_executes_until_condition_false(self, ctx):
        compiled = DiabloCompiler().compile("var k: int = 0; while (k < 4) k += 1;")
        result = ProgramRunner(ctx).run(compiled.target, {})
        assert result.scalar("k") == 4

    def test_dataset_inputs_are_accepted(self, ctx):
        compiled = DiabloCompiler().compile("var s: double = 0.0; for v in V do s += v;")
        dataset = ctx.indexed([1.0, 2.0, 3.0])
        result = ProgramRunner(ctx).run(compiled.target, {"V": dataset})
        assert result.scalar("s") == 6.0

    def test_getitem_access(self, ctx):
        compiled = DiabloCompiler().compile("var s: double = 0.0; for v in V do s += v;")
        result = ProgramRunner(ctx).run(compiled.target, {"V": [2.0]})
        assert result["s"] == 2.0


class TestExplain:
    def test_matrix_multiplication_plan_shape(self):
        result = DiabloCompiler().compile(
            """
            var R: matrix[double] = matrix();
            for i = 0, n-1 do
              for j = 0, n-1 do
                for k = 0, n-1 do
                  R[i,j] += M[i,k]*N[k,j];
            """
        )
        update = result.target.statements[-1]
        summary = explain_term(update.term, {"M", "N", "R"})
        assert summary.hash_joins == 1
        assert summary.reduce_by_keys == 1
        assert summary.merges == 1
        assert "M" in summary.scans and "N" in summary.scans

    def test_kmeans_assignment_contains_centroid_join(self):
        from repro.evaluation.harness import diablo_for
        from repro.programs import get_program

        spec = get_program("kmeans")
        diablo = diablo_for(spec)
        compiled = diablo.compile(spec.source)
        arrays = compiled.target.array_names() | {
            name for name, info in compiled.target.variables.items() if info.is_collection
        }
        summaries = [explain_term(s.term, arrays) for s in compiled.target.assignments()]
        # At least one generated statement combines the point and centroid
        # datasets without a join key (the expensive plan the paper describes).
        assert any(s.broadcast_joins >= 1 for s in summaries)

    def test_plan_summary_rendering(self):
        result = DiabloCompiler().compile("for i = 1, 10 do V[i] += W[i];")
        summary = explain_term(result.target.statements[-1].term, {"V", "W"})
        text = str(summary)
        assert "reduceByKey" in text
        assert summary.shuffle_operations >= 1


class TestLocalBagCache:
    """Regression: the per-evaluator collect() cache used to key on bare
    ``id(value)`` -- after the dataset was garbage collected, a *new* object
    reusing the id would silently be served the stale collected bag."""

    def test_cache_keeps_the_dataset_alive(self, ctx):
        import gc
        import weakref

        ev = evaluator(ctx)
        dataset = ctx.parallelize([1, 2, 3])
        reference = weakref.ref(dataset)
        assert ev._as_local_bag(dataset) == [1, 2, 3]
        del dataset
        gc.collect()
        # The cache entry holds a strong reference, so the id can never be
        # reused while the entry is alive.
        assert reference() is not None

    def test_id_collision_is_detected_by_identity_check(self, ctx):
        ev = evaluator(ctx)
        stale = ctx.parallelize(["stale"])
        fresh = ctx.parallelize(["fresh"])
        # Simulate the historical failure mode: an entry recorded under the
        # *fresh* dataset's id but holding a different (collected) object.
        ev._local_bag_cache[id(fresh)] = (stale, ["stale"])
        assert ev._as_local_bag(fresh) == ["fresh"], "stale bag must not be served"

    def test_repeated_collects_hit_the_cache(self, ctx):
        ev = evaluator(ctx)
        dataset = ctx.parallelize([1, 2])
        first = ev._as_local_bag(dataset)
        assert ev._as_local_bag(dataset) is first, "second lookup must reuse the list"
