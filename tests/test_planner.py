"""The partition-aware planner: shuffle elimination, loop-invariant caching,
common-subexpression sharing -- and the differential guarantee that none of
it changes results.

Covers the PR 5 acceptance criteria:

* co-partitioned joins / group-bys execute **zero** ShuffleStages, and
  ``explain()`` / ``explain_metrics`` report each elimination with a reason;
* loop-invariant inputs are shuffled exactly once -- PageRank iterations 2+
  shuffle only the mutated side (asserted on the per-iteration structural
  metrics in ``ProgramResult.iteration_metrics``);
* every Figure 3 workload produces identical outputs with the planner on and
  off, under every executor mode, including with spilling forced at a 1-byte
  threshold.
"""

from __future__ import annotations

import pytest

from test_soundness_programs import assert_same_outputs, values_match

from repro import Diablo
from repro.algebra.evaluator import EvaluationEnvironment, TermEvaluator
from repro.algebra.explain import explain_metrics
from repro.algebra.plan import HashJoinNode, NarrowNode, render_plan
from repro.algebra.planner import LoopInvariantCache
from repro.comprehension import ir
from repro.evaluation.harness import diablo_for, translated_outputs
from repro.programs import get_program, table2_program_names
from repro.runtime.context import EXECUTOR_MODES, DistributedContext
from repro.runtime.partitioner import HashPartitioner
from repro.workloads import workload_for_program


@pytest.fixture
def ctx():
    return DistributedContext(num_partitions=4)


def _add(a, b):
    return a + b


# ---------------------------------------------------------------------------
# Narrow (shuffle-free) wide operators over co-partitioned inputs
# ---------------------------------------------------------------------------


class TestNarrowFastPaths:
    """Co-partitioned inputs execute wide operators with zero ShuffleStages."""

    def _sides(self, ctx):
        partitioner = HashPartitioner(4)
        left = ctx.parallelize([(i % 7, i) for i in range(42)]).partition_by(partitioner)
        right = ctx.parallelize([(i % 7, i * 10) for i in range(21)]).partition_by(partitioner)
        return left, right

    def test_copartitioned_join_runs_zero_shuffles(self, ctx):
        left, right = self._sides(ctx)
        ctx.metrics.reset()
        joined = left.join(right)
        result = sorted(joined.collect())
        assert ctx.metrics.shuffles == 0, "co-partitioned join must not shuffle"
        assert ctx.metrics.shuffles_eliminated == 1
        assert ctx.metrics.narrow_joins == 1
        assert ctx.metrics.join_strategies == {"narrow": 1}
        # Same records as the forced shuffle join.
        shuffled = sorted(left.join(right, strategy="shuffle").collect())
        assert result == shuffled

    def test_copartitioned_cogroup_runs_zero_shuffles(self, ctx):
        left, right = self._sides(ctx)
        ctx.metrics.reset()
        grouped = left.co_group(right)
        result = grouped.collect()
        assert ctx.metrics.shuffles == 0
        assert ctx.metrics.narrow_joins == 1
        assert {k for k, _ in result} == set(range(7))

    def test_copartitioned_outer_joins_match_shuffle_results(self, ctx):
        partitioner = HashPartitioner(4)
        left = ctx.parallelize([(i % 5, i) for i in range(30)]).partition_by(partitioner)
        right = ctx.parallelize([(i % 8, -i) for i in range(24)]).partition_by(partitioner)
        for how in ("left_outer_join", "right_outer_join", "full_outer_join"):
            narrow = sorted(getattr(left, how)(right).collect())
            shuffled = sorted(
                getattr(left, how)(right, partitioner=HashPartitioner(2)).collect()
            )
            assert narrow == shuffled, how

    def test_keyed_reduce_on_partitioned_input_runs_zero_shuffles(self, ctx):
        left, _right = self._sides(ctx)
        ctx.metrics.reset()
        reduced = left.reduce_by_key(_add)
        assert dict(reduced.collect()) == {
            k: sum(i for i in range(42) if i % 7 == k) for k in range(7)
        }
        assert ctx.metrics.shuffles == 0
        assert ctx.metrics.shuffles_eliminated == 1
        assert reduced.partitioner == HashPartitioner(4), "narrow reduce keeps placement"

    def test_keyed_group_and_aggregate_on_partitioned_input(self, ctx):
        left, _right = self._sides(ctx)
        ctx.metrics.reset()
        grouped = dict(left.group_by_key().map_values(sorted).collect())
        aggregated = dict(
            left.aggregate_by_key((0, 0), lambda acc, v: (acc[0] + 1, acc[1] + v), _add).collect()
        )
        assert ctx.metrics.shuffles == 0
        assert grouped == {k: sorted(i for i in range(42) if i % 7 == k) for k in range(7)}
        assert aggregated == {
            k: (6, sum(i for i in range(42) if i % 7 == k)) for k in range(7)
        }

    def test_requesting_a_different_partitioner_still_shuffles(self, ctx):
        left, _right = self._sides(ctx)
        ctx.metrics.reset()
        left.reduce_by_key(_add, partitioner=HashPartitioner(2)).materialize()
        assert ctx.metrics.shuffles == 1, "an explicit different placement is honored"
        assert ctx.metrics.shuffles_eliminated == 0

    def test_plan_optimize_off_disables_elimination(self):
        with DistributedContext(num_partitions=4, plan_optimize=False) as ctx:
            partitioner = HashPartitioner(4)
            left = ctx.parallelize([(i % 7, i) for i in range(42)]).partition_by(partitioner)
            ctx.metrics.reset()
            left.reduce_by_key(_add).materialize()
            assert ctx.metrics.shuffles == 1
            assert ctx.metrics.shuffles_eliminated == 0

    def test_explain_reports_the_elimination(self, ctx):
        left, right = self._sides(ctx)
        joined = left.join(right)
        assert "shuffle eliminated" in joined.explain()
        assert "both sides partitioned by HashPartitioner(4)" in joined.explain()
        reduced = left.reduce_by_key(_add)
        assert "reduceByKey" in reduced.explain()
        assert "shuffle eliminated" in reduced.explain()

    def test_explain_metrics_lists_eliminations_and_reuses(self, ctx):
        left, right = self._sides(ctx)
        ctx.metrics.reset()
        left.join(right).materialize()
        ctx.metrics.record_loop_invariant_reuse()
        report = "\n".join(explain_metrics(ctx.metrics))
        assert "shuffles eliminated: 1" in report
        assert "narrow joins: 1" in report
        assert "both sides partitioned by" in report
        assert "loop-invariant reuses: 1" in report

    def test_narrow_paths_agree_across_executors(self):
        collected = {}
        for mode in EXECUTOR_MODES:
            with DistributedContext(num_partitions=4, executor=mode) as ctx:
                left, right = self._sides(ctx)
                ctx.metrics.reset()
                collected[mode] = {
                    "join": left.join(right).collect(),
                    "reduce": left.reduce_by_key(_add).collect(),
                    "cogroup": left.co_group(right).collect(),
                    "shuffles": ctx.metrics.shuffles,
                    "eliminated": ctx.metrics.shuffles_eliminated,
                }
        assert collected["sequential"] == collected["threads"] == collected["processes"]
        assert collected["sequential"]["shuffles"] == 0


class TestPrepartitionedMapSideBypass:
    """One pre-partitioned input of a two-sided shuffle moves zero bytes."""

    def test_cogroup_with_one_placed_side_skips_its_map_side(self, ctx):
        placed = ctx.parallelize([(i % 6, i) for i in range(60)]).partition_by(HashPartitioner(4))
        loose = ctx.parallelize([(i % 6, -i) for i in range(30)])
        ctx.metrics.reset()
        # .map() drops the partitioner on the loose side, so only the placed
        # side is eligible for the bypass.
        grouped = placed.co_group(loose.map(lambda pair: pair))
        result = dict(grouped.collect())
        assert ctx.metrics.shuffles == 1
        assert ctx.metrics.prepartitioned_inputs == 1
        # Only the loose side's 30 records crossed the shuffle.
        assert ctx.metrics.shuffled_records == 30
        assert set(result) == set(range(6))
        for key in range(6):
            left_values, right_values = result[key]
            assert sorted(left_values) == [i for i in range(60) if i % 6 == key]
            assert sorted(right_values) == sorted(-i for i in range(30) if i % 6 == key)

    def test_bypass_matches_full_shuffle_results_exactly(self):
        def run(optimize):
            with DistributedContext(num_partitions=4, plan_optimize=optimize) as ctx:
                placed = ctx.parallelize([(i % 6, i) for i in range(60)]).partition_by(
                    HashPartitioner(4)
                )
                loose = ctx.parallelize([(i % 6, -i) for i in range(30)]).map(lambda p: p)
                return placed.co_group(loose).collect()

        assert run(True) == run(False)


# ---------------------------------------------------------------------------
# Common sub-expression elimination (one statement)
# ---------------------------------------------------------------------------


class TestCommonSubexpressions:
    def test_repeated_subterm_is_computed_once(self, ctx):
        # { (x, y) | (i, x) <- C, (j, y) <- C, j == i } where C is the *same*
        # nested comprehension sub-term on both sides.
        nested = ir.Comprehension(
            ir.CTuple((ir.CVar("k"), ir.CBinOp("*", ir.CVar("v"), ir.CConst(2)))),
            (ir.Generator(ir.PTuple((ir.PVar("k"), ir.PVar("v"))), ir.CVar("V")),),
        )
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("x"), ir.CVar("y"))),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("x"))), nested),
                ir.Generator(ir.PTuple((ir.PVar("j"), ir.PVar("y"))), nested),
                ir.Condition(ir.CBinOp("==", ir.CVar("j"), ir.CVar("i"))),
            ),
        )
        evaluator = TermEvaluator(
            EvaluationEnvironment(ctx, {"V": ctx.parallelize_pairs({i: i for i in range(8)})})
        )
        result = sorted(evaluator.evaluate_bag(comp).collect())
        assert result == [(i * 2, i * 2) for i in range(8)]
        assert any("CSE" in entry for entry in evaluator.trace), evaluator.trace
        # Both generators resolved the nested sub-term to one cached dataset.
        assert ("bag", nested) in evaluator._term_dataset_cache

    def test_rebound_key_variable_invalidates_partitioner_claim(self, ctx):
        # { (k, +/v) | (i, v) <- V, group by k : i % 2, let k = k + 1 }:
        # the rows stay placed by the OLD k, so the head's (new) k must NOT
        # inherit the partitioner -- a later narrow join keyed on the new k
        # would otherwise read mis-placed partitions.
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("k"), ir.CVar("v"))),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.GroupBy(ir.PVar("k"), ir.CBinOp("%", ir.CVar("i"), ir.CConst(2))),
                ir.LetBinding(ir.PVar("k"), ir.CBinOp("+", ir.CVar("k"), ir.CConst(1))),
            ),
        )
        evaluator = TermEvaluator(
            EvaluationEnvironment(ctx, {"V": ctx.parallelize_pairs({i: i * 10 for i in range(12)})})
        )
        result = evaluator.evaluate_bag(comp).materialize()
        assert result.partitioner is None, "rebound key must drop the placement claim"
        # Joining against a correctly-placed dataset must see every key.
        other = ctx.parallelize([(1, "odd"), (2, "even")]).partition_by(
            HashPartitioner(ctx.num_partitions)
        )
        joined = dict(result.join(other).collect())
        assert set(joined) == {1, 2}

    def test_unrebound_group_key_keeps_the_partitioner(self, ctx):
        # Control for the rebinding test: without the let, the head re-keys
        # by the group key and the partitioner survives.
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("k"), ir.Aggregate("+", ir.CVar("v")))),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.GroupBy(ir.PVar("k"), ir.CBinOp("%", ir.CVar("i"), ir.CConst(2))),
            ),
        )
        evaluator = TermEvaluator(
            EvaluationEnvironment(ctx, {"V": ctx.parallelize_pairs({i: i for i in range(12)})})
        )
        result = evaluator.evaluate_bag(comp).materialize()
        assert result.partitioner == HashPartitioner(ctx.num_partitions)

    def test_empty_generator_short_circuits_later_domains(self, ctx):
        # { x | (i, x) <- Empty, (j, y) <- range(1, 1/0) }: the second domain
        # must never be evaluated when the first generator is empty -- the
        # interpreter oracle never reaches the inner loop either.
        comp = ir.Comprehension(
            ir.CVar("x"),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("x"))), ir.CVar("Empty")),
                ir.Generator(
                    ir.PTuple((ir.PVar("j"), ir.PVar("y"))),
                    ir.RangeTerm(
                        ir.CConst(1),
                        ir.CBinOp("/", ir.CConst(1), ir.CConst(0)),
                    ),
                ),
            ),
        )
        evaluator = TermEvaluator(EvaluationEnvironment(ctx, {"Empty": ctx.empty()}))
        assert evaluator.evaluate_bag(comp).collect() == []

    def test_stacked_group_bys_on_the_same_key_eliminate_the_second_shuffle(self, ctx):
        # { (k2, +/w) | (i, v) <- V, group by k : i % 3, let w = +/v,
        #   group by k2 : k } -- the second group-by keys by the first's
        # output key, so its shuffle is eliminated.
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("k2"), ir.Aggregate("+", ir.CVar("w")))),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.GroupBy(ir.PVar("k"), ir.CBinOp("%", ir.CVar("i"), ir.CConst(3))),
                ir.LetBinding(ir.PVar("w"), ir.Aggregate("+", ir.CVar("v"))),
                ir.GroupBy(ir.PVar("k2"), ir.CVar("k")),
            ),
        )
        evaluator = TermEvaluator(
            EvaluationEnvironment(ctx, {"V": ctx.parallelize_pairs({i: i for i in range(12)})})
        )
        ctx.metrics.reset()
        result = dict(evaluator.evaluate_bag(comp).collect())
        assert result == {
            k: sum(i for i in range(12) if i % 3 == k) for k in range(3)
        }
        assert ctx.metrics.shuffles == 1, "second group-by must reuse the placement"
        assert ctx.metrics.shuffles_eliminated == 1

    def test_plan_is_exposed_and_renderable(self, ctx):
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("a"), ir.CVar("b"))),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("a"))), ir.CVar("X")),
                ir.Generator(ir.PTuple((ir.PVar("j"), ir.PVar("b"))), ir.CVar("Y")),
                ir.Condition(ir.CBinOp("==", ir.CVar("j"), ir.CVar("i"))),
            ),
        )
        evaluator = TermEvaluator(
            EvaluationEnvironment(
                ctx,
                {
                    "X": ctx.parallelize_pairs({1: "a"}),
                    "Y": ctx.parallelize_pairs({1: "b"}),
                },
            )
        )
        evaluator.evaluate_bag(comp).collect()
        plan = evaluator.last_plan
        assert plan is not None
        assert isinstance(plan, NarrowNode)
        assert isinstance(plan.child, HashJoinNode)
        rendered = render_plan(plan)
        assert "HashJoin" in rendered
        assert "Scan" in rendered


# ---------------------------------------------------------------------------
# Loop-invariant hoisting
# ---------------------------------------------------------------------------

LOOP_SOURCE = """
var A: vector[double] = vector();
var k: int = 0;
while (k < 4) {
  k += 1;
  for i = 0, 9 do
    A[i] += W[i];
};
"""


class TestLoopInvariantHoisting:
    def test_invariant_merge_side_is_shuffled_exactly_once(self, ctx):
        with Diablo(ctx) as diablo:
            result = diablo.compile(LOOP_SOURCE).run(W={i: float(i) for i in range(10)})
        assert result.array("A") == {i: 4.0 * i for i in range(10)}
        iterations = result.iteration_metrics
        assert len(iterations) == 4
        # Iteration 1 pays the one-time placement of the invariant side...
        assert iterations[0]["shuffles"] > 0
        assert iterations[0]["loop_invariant_reuses"] == 0
        # ...and iterations 2+ reuse it: zero shuffles, zero bytes.
        for entry in iterations[1:]:
            assert entry["shuffles"] == 0
            assert entry["shuffled_bytes"] == 0
            assert entry["loop_invariant_reuses"] >= 1
            assert entry["narrow_joins"] >= 1
        assert ctx.metrics.shuffle_operations.get("partitionBy") == 1
        assert any("loop-invariant" in line for line in result.trace)

    def test_mutated_variables_are_never_treated_as_invariant(self, ctx):
        source = """
        var A: vector[double] = vector();
        var B: vector[double] = vector();
        var k: int = 0;
        for i = 0, 4 do
          A[i] := 0.0;
        while (k < 3) {
          k += 1;
          for i = 0, 4 do
            B[i] := A[i] + 1.0;
          for i = 0, 4 do
            A[i] := B[i];
        };
        """
        with Diablo(ctx) as diablo:
            result = diablo.compile(source).run()
        # A and B are both assigned in the body: every iteration must see the
        # fresh values, not a cached snapshot.
        assert result.array("A") == {i: 3.0 for i in range(5)}
        assert result.array("B") == {i: 3.0 for i in range(5)}
        assert all(entry["loop_invariant_reuses"] == 0 for entry in result.iteration_metrics)

    def test_cache_invalidation_drops_dependent_entries(self):
        cache = LoopInvariantCache(frozenset({"E", "C"}))
        cache.put(("merge-side", "termE"), "dsE", frozenset({"E"}))
        cache.put(("merge-side", "termC"), "dsC", frozenset({"C"}))
        assert cache.get(("merge-side", "termE")) == "dsE"
        dropped = cache.invalidate("E")
        assert dropped == 1
        assert cache.get(("merge-side", "termE")) is None
        assert cache.get(("merge-side", "termC")) == "dsC"

    def test_plan_optimize_off_disables_hoisting(self):
        with DistributedContext(num_partitions=4, plan_optimize=False) as ctx:
            with Diablo(ctx) as diablo:
                result = diablo.compile(LOOP_SOURCE).run(W={i: float(i) for i in range(10)})
            assert result.array("A") == {i: 4.0 * i for i in range(10)}
            assert ctx.metrics.loop_invariant_reuses == 0
            assert ctx.metrics.shuffles_eliminated == 0


# ---------------------------------------------------------------------------
# Figure 3: PageRank / KMeans structural assertions (the acceptance criteria)
# ---------------------------------------------------------------------------


def _run_program(name, inputs, **context_kwargs):
    spec = get_program(name)
    with DistributedContext(num_partitions=4, **context_kwargs) as context:
        diablo = diablo_for(spec, context)
        result = diablo.compile(spec.source).run(**inputs)
        outputs = translated_outputs(name, result)
        return result, outputs, context.metrics


class TestPageRankIterations:
    def test_iterations_2_plus_shuffle_only_the_mutated_side(self):
        inputs = workload_for_program("pagerank", 40)
        inputs["num_steps"] = 4
        result, _outputs, metrics = _run_program("pagerank", inputs)
        iterations = [m for m in result.iteration_metrics if m["loop"] == 1]
        assert len(iterations) == 4
        first, rest = iterations[0], iterations[1:]
        for entry in rest:
            # The loop-invariant inputs (edge list, degree vector, the
            # constant rank reset) were shuffled in iteration 1 only:
            # later iterations re-shuffle strictly less...
            assert entry["shuffled_bytes"] < first["shuffled_bytes"]
            assert entry["shuffles"] < first["shuffles"]
            # ...namely just the mutated side, reusing the cached invariants.
            assert entry["loop_invariant_reuses"] >= 1
        # Steady state: iterations 2+ all shuffle exactly the same (mutated)
        # data volume.
        assert len({entry["shuffled_bytes"] for entry in rest}) == 1
        # The invariant placement shuffle ran exactly once for the whole run.
        assert metrics.shuffle_operations.get("partitionBy") == 1

    def test_optimized_run_matches_unoptimized_and_interpreter(self):
        inputs = workload_for_program("pagerank", 40)
        inputs["num_steps"] = 3
        _result, optimized, on_metrics = _run_program("pagerank", inputs)
        _result2, unoptimized, off_metrics = _run_program(
            "pagerank", inputs, plan_optimize=False
        )
        spec = get_program("pagerank")
        for array in spec.array_outputs:
            assert set(optimized[array]) == set(unoptimized[array])
            for key in optimized[array]:
                assert values_match(optimized[array][key], unoptimized[array][key])
        assert on_metrics.shuffled_bytes < off_metrics.shuffled_bytes
        diablo = diablo_for(spec)
        oracle = diablo.interpret(spec.source, dict(inputs))
        assert_same_outputs(spec, _Outputs(optimized), oracle)


class TestKMeansElimination:
    def test_planner_reduces_kmeans_shuffled_bytes(self):
        inputs = workload_for_program("kmeans", 220)
        _result, optimized, on_metrics = _run_program("kmeans", inputs)
        _result2, unoptimized, off_metrics = _run_program("kmeans", inputs, plan_optimize=False)
        assert on_metrics.shuffled_bytes < off_metrics.shuffled_bytes
        assert on_metrics.shuffles < off_metrics.shuffles
        assert on_metrics.narrow_joins >= 1
        spec = get_program("kmeans")
        for array in spec.array_outputs:
            assert set(optimized[array]) == set(unoptimized[array])
            for key in optimized[array]:
                assert values_match(optimized[array][key], unoptimized[array][key])


class TestPlanSkeletonCache:
    """Loop bodies cache their lowered plan trees (PR 7): iterations 2+ only
    rebind the mutated inputs instead of re-running comprehension evaluation
    and lowering, without changing a single shuffle."""

    def _pagerank(self, **context_kwargs):
        inputs = workload_for_program("pagerank", 40)
        inputs["num_steps"] = 4
        return _run_program("pagerank", inputs, **context_kwargs)

    def test_pagerank_iterations_2_plus_hit_the_plan_cache(self):
        result, outputs, metrics = self._pagerank()
        iterations = [m for m in result.iteration_metrics if m["loop"] == 1]
        assert len(iterations) == 4
        # Iteration 1 builds and caches the skeletons; 2+ reuse them.
        assert iterations[0]["plan_cache_hits"] == 0
        for entry in iterations[1:]:
            assert entry["plan_cache_hits"] >= 1
        assert metrics.plan_cache_hits >= 3

        # Reusing a skeleton must not change what executes: same shuffle
        # structure, same bytes, same outputs as the uncached run.
        result_off, outputs_off, metrics_off = self._pagerank(plan_cache=False)
        assert metrics_off.plan_cache_hits == 0
        assert dict(metrics.shuffle_operations) == dict(metrics_off.shuffle_operations)
        assert metrics.shuffled_bytes == metrics_off.shuffled_bytes
        assert metrics.loop_invariant_reuses == metrics_off.loop_invariant_reuses
        spec = get_program("pagerank")
        _outputs_match(spec, outputs, outputs_off)

    def test_plan_cache_hits_render_in_explain_metrics(self):
        _result, _outputs, metrics = self._pagerank()
        report = "\n".join(explain_metrics(metrics))
        assert f"plan-skeleton cache hits: {metrics.plan_cache_hits}" in report

    def test_skeleton_reuse_is_traced(self):
        result, _outputs, metrics = self._pagerank()
        cached = [line for line in result.trace if "plan skeleton cached" in line]
        reused = [line for line in result.trace if "plan skeleton reused" in line]
        assert cached, result.trace
        assert reused, result.trace
        # Every cache hit shows up as one reuse trace line.
        assert len(reused) == metrics.plan_cache_hits


class TestProgramLevelPlacement:
    """The whole-program pass (PR 7): an *input* read by >= 2 keyed consumers
    is hash-partitioned once up front, and the joins that read it exploit the
    placement (the keying maps preserve it), so both consumers run narrow."""

    SOURCE = """
    var C: vector[double] = vector();
    var D: vector[double] = vector();
    for i = 0, 99 do
      C[i] := W[i] + V[i];
    for i = 0, 99 do
      D[i] := W[i] * V[i];
    """

    def _run(self, **context_kwargs):
        # A threshold below the input size: the W-joins-V statements cannot
        # broadcast, so without placement each one shuffles both inputs.
        context_kwargs.setdefault("broadcast_join_threshold", 50)
        with DistributedContext(num_partitions=4, **context_kwargs) as context:
            with Diablo(context) as diablo:
                result = diablo.compile(self.SOURCE).run(
                    W={i: float(i) for i in range(100)},
                    V={i: 1.0 for i in range(100)},
                )
            return result, context.metrics

    def test_multiply_consumed_inputs_are_placed_up_front(self):
        result, metrics = self._run()
        for name in ("V", "W"):
            assert any(
                line.startswith(f"{name}: program-level placement for 2 keyed consumer(s)")
                for line in result.trace
            ), result.trace
        # One placement shuffle per input, then both W-joins-V run narrow.
        assert metrics.shuffle_operations.get("partitionBy", 0) == 2
        assert metrics.narrow_joins >= 2
        assert metrics.shuffles_eliminated >= 2
        assert result.array("C") == {i: float(i) + 1.0 for i in range(100)}
        assert result.array("D") == {i: float(i) for i in range(100)}

    def test_placement_matches_unoptimized_outputs(self):
        result_on, metrics_on = self._run()
        result_off, metrics_off = self._run(plan_optimize=False)
        assert not any("program-level placement" in line for line in result_off.trace)
        assert metrics_off.shuffle_operations.get("partitionBy", 0) == 0
        # Two placement shuffles replace four join-side shuffles.
        assert metrics_on.shuffled_bytes < metrics_off.shuffled_bytes
        for array in ("C", "D"):
            assert result_on.array(array) == result_off.array(array)


class _Outputs:
    """Adapter so assert_same_outputs can read plain output dicts."""

    def __init__(self, outputs):
        self._outputs = outputs

    def __getitem__(self, name):
        return self._outputs[name]

    def array(self, name):
        return self._outputs[name]


# ---------------------------------------------------------------------------
# Differential: planner on vs. off across every Figure 3 workload
# ---------------------------------------------------------------------------

SIZES = {
    "conditional_sum": 300,
    "equal": 200,
    "string_match": 200,
    "word_count": 400,
    "histogram": 200,
    "linear_regression": 200,
    "group_by": 300,
    "matrix_addition": 6,
    "matrix_multiplication": 5,
    "pagerank": 40,
    "kmeans": 220,
    "matrix_factorization": 6,
}


def _workload(name):
    inputs = workload_for_program(name, SIZES[name])
    if name == "matrix_factorization":
        from repro.workloads import generators

        inputs["R"] = generators.random_matrix(SIZES[name], SIZES[name], seed=3)
    return inputs


def _outputs_match(spec, left, right):
    for scalar in spec.scalar_outputs:
        assert values_match(left[scalar], right[scalar]), scalar
    for array in spec.array_outputs:
        assert set(left[array]) == set(right[array]), array
        for key in left[array]:
            assert values_match(left[array][key], right[array][key]), (array, key)


@pytest.mark.parametrize("name", table2_program_names())
def test_planner_on_off_differential(name):
    spec = get_program(name)
    inputs = _workload(name)
    _r1, on_outputs, _m1 = _run_program(name, inputs)
    _r2, off_outputs, _m2 = _run_program(name, inputs, plan_optimize=False)
    _outputs_match(spec, on_outputs, off_outputs)


@pytest.mark.parametrize("mode", EXECUTOR_MODES)
@pytest.mark.parametrize("name", ["pagerank", "kmeans", "word_count", "group_by"])
def test_planner_with_spilling_matches_unoptimized(name, mode):
    """Planner on + 1-byte spill threshold vs. planner off, per executor."""
    spec = get_program(name)
    inputs = _workload(name)
    if name == "pagerank":
        inputs["num_steps"] = 2
    _r1, on_outputs, _m1 = _run_program(
        name, inputs, executor=mode, spill_threshold_bytes=1
    )
    _r2, off_outputs, _m2 = _run_program(name, inputs, plan_optimize=False)
    _outputs_match(spec, on_outputs, off_outputs)
