"""Tests for the CI perf-regression gate (benchmarks/check_regression.py).

The gate compares a fresh benchmark results file against the committed
``BENCH_results.json`` baseline; these tests drive its compare logic (and the
full CLI on synthetic files) to pin down the acceptance criterion: green on a
clean run, red when fed an artificially slowed result.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_GATE_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_SPEC = importlib.util.spec_from_file_location("check_regression", _GATE_PATH)
gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(gate)


def _entries(walls: dict[str, float]) -> dict[tuple, dict]:
    table = {}
    for workload, wall in walls.items():
        entry = {
            "workload": workload,
            "size": 1000,
            "system": "diablo",
            "method": "benchmark-mean",
            "wall_seconds": wall,
        }
        table[gate.entry_key(entry)] = entry
    return table


BASE = {"word_count": 1.0, "group_by": 0.8, "pagerank": 1.2, "kmeans": 2.0}


class TestCompare:
    def test_identical_results_pass(self):
        comparisons, factor = gate.compare(_entries(BASE), _entries(BASE))
        assert factor == pytest.approx(1.0)
        assert not any(c.regressed for c in comparisons)

    def test_single_slowed_workload_fails(self):
        slowed = dict(BASE, word_count=BASE["word_count"] * 2.0)
        comparisons, _ = gate.compare(_entries(BASE), _entries(slowed))
        regressed = [c for c in comparisons if c.regressed]
        assert [c.key[0] for c in regressed] == ["word_count"]

    def test_uniform_machine_slowdown_is_normalized_away(self):
        """A 2x-slower CI runner must not fail the gate: the median ratio is
        divided out, so only *relative* regressions count."""
        slower_machine = {name: wall * 2.0 for name, wall in BASE.items()}
        comparisons, factor = gate.compare(_entries(BASE), _entries(slower_machine))
        assert factor == pytest.approx(2.0)
        assert not any(c.regressed for c in comparisons)

    def test_no_normalize_flags_the_uniform_slowdown(self):
        slower_machine = {name: wall * 2.0 for name, wall in BASE.items()}
        comparisons, factor = gate.compare(
            _entries(BASE), _entries(slower_machine), normalize=False
        )
        assert factor == 1.0
        assert all(c.regressed for c in comparisons)

    def test_grace_floor_ignores_micro_benchmark_jitter(self):
        """A 0.2ms entry tripling is timer noise, not a regression."""
        base = dict(BASE, tiny=0.0002)
        jittery = dict(BASE, tiny=0.0006)
        comparisons, _ = gate.compare(_entries(base), _entries(jittery))
        assert not any(c.regressed for c in comparisons)

    def test_within_tolerance_passes(self):
        slightly_slower = {name: wall * 1.05 for name, wall in BASE.items()}
        comparisons, _ = gate.compare(
            _entries(BASE), _entries(slightly_slower), normalize=False
        )
        assert not any(c.regressed for c in comparisons)

    def test_extra_and_missing_entries_are_ignored(self):
        fresh = dict(BASE, brand_new_workload=9.9)
        fresh.pop("kmeans")
        comparisons, _ = gate.compare(_entries(BASE), _entries(fresh))
        compared = {c.key[0] for c in comparisons}
        assert compared == {"word_count", "group_by", "pagerank"}

    def test_disjoint_entries_raise(self):
        with pytest.raises(ValueError):
            gate.compare(_entries(BASE), _entries({"other": 1.0}))


def _write_results(path: Path, walls: dict[str, float]) -> None:
    path.write_text(
        json.dumps({"schema": 1, "entries": list(_entries(walls).values())})
    )


class TestCli:
    def test_cli_green_on_matching_results(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        fresh = tmp_path / "fresh.json"
        _write_results(baseline, BASE)
        _write_results(fresh, BASE)
        code = gate.main(["--baseline", str(baseline), "--results", str(fresh)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_cli_fails_on_artificially_slowed_results(self, tmp_path, capsys):
        """The acceptance criterion: feeding a slowed result file turns the
        gate red."""
        baseline = tmp_path / "baseline.json"
        slowed = tmp_path / "slowed.json"
        _write_results(baseline, BASE)
        _write_results(slowed, dict(BASE, pagerank=BASE["pagerank"] * 3.0))
        code = gate.main(["--baseline", str(baseline), "--results", str(slowed)])
        assert code == 1
        output = capsys.readouterr()
        assert "REGRESSED" in output.out and "pagerank" in output.out

    def test_cli_reports_unusable_baseline(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert gate.main(["--baseline", str(missing), "--results", str(missing)]) == 2

    def test_gate_accepts_the_committed_baseline_against_itself(self):
        """The committed BENCH_results.json must always pass against itself
        (sanity for the CI wiring)."""
        committed = gate.DEFAULT_BASELINE
        assert committed.exists(), "committed baseline missing"
        code = gate.main(["--results", str(committed)])
        assert code == 0
