"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Diablo
from repro.runtime.context import DistributedContext


@pytest.fixture
def context() -> DistributedContext:
    """A small local DISC context."""
    return DistributedContext(num_partitions=4)


@pytest.fixture
def diablo(context: DistributedContext) -> Diablo:
    """A default Diablo compiler/runner pair."""
    return Diablo(context)


def assert_close(actual, expected, tolerance: float = 1e-9) -> None:
    """Assert numeric closeness with a relative tolerance."""
    assert abs(actual - expected) <= tolerance * max(1.0, abs(actual), abs(expected)), (
        f"{actual} != {expected}"
    )


def assert_dict_close(actual: dict, expected: dict, tolerance: float = 1e-9) -> None:
    """Assert two numeric dicts have the same keys and close values."""
    assert set(actual.keys()) == set(expected.keys())
    for key, value in expected.items():
        got = actual[key]
        if isinstance(value, (int, float)) and isinstance(got, (int, float)):
            assert abs(got - value) <= tolerance * max(1.0, abs(value)), f"{key}: {got} != {value}"
        else:
            assert got == value, f"{key}: {got} != {value}"
