"""Executable soundness check (Theorem A.1): for every benchmark program the
distributed evaluation of the translated target code must agree with the
sequential reference interpreter on the same inputs."""

import pytest

from repro.comprehension.monoids import ArgMin
from repro.evaluation.harness import diablo_for
from repro.programs import PROGRAMS, get_program
from repro.workloads import generators, workload_for_program

#: (program, workload size) pairs small enough for the tree-walking interpreter.
CASES = [
    ("conditional_sum", 300),
    ("equal", 200),
    ("string_match", 200),
    ("word_count", 400),
    ("histogram", 200),
    ("linear_regression", 200),
    ("group_by", 300),
    ("matrix_addition", 6),
    ("matrix_multiplication", 5),
    ("pagerank", 40),
    ("kmeans", 220),
    ("pca", 15),
    ("average", 100),
    ("count", 100),
    ("sum", 100),
    ("conditional_count", 100),
    ("equal_frequency", 80),
]


def values_match(left, right, tolerance=1e-8):
    if isinstance(left, ArgMin) and isinstance(right, ArgMin):
        return left.index == right.index
    if isinstance(left, bool) or isinstance(right, bool):
        return bool(left) == bool(right)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return abs(left - right) <= tolerance * max(1.0, abs(left), abs(right))
    if isinstance(left, tuple) and isinstance(right, tuple):
        return len(left) == len(right) and all(values_match(a, b) for a, b in zip(left, right, strict=False))
    return left == right


def run_both(name, inputs):
    spec = get_program(name)
    diablo = diablo_for(spec)
    distributed = diablo.compile(spec.source).run(**inputs)
    sequential = diablo.interpret(spec.source, dict(inputs))
    return spec, distributed, sequential


def assert_same_outputs(spec, distributed, sequential):
    for scalar in spec.scalar_outputs:
        assert values_match(distributed[scalar], sequential[scalar]), (
            f"{spec.name}.{scalar}: {distributed[scalar]} != {sequential[scalar]}"
        )
    for array in spec.array_outputs:
        left = distributed.array(array)
        right = sequential[array]
        assert set(left.keys()) == set(right.keys()), f"{spec.name}.{array}: key sets differ"
        for key in right:
            assert values_match(left[key], right[key]), (
                f"{spec.name}.{array}[{key}]: {left[key]} != {right[key]}"
            )


@pytest.mark.parametrize("name,size", CASES, ids=[name for name, _ in CASES])
def test_translated_program_matches_interpreter(name, size):
    inputs = workload_for_program(name, size)
    spec, distributed, sequential = run_both(name, inputs)
    assert_same_outputs(spec, distributed, sequential)


def test_matrix_factorization_matches_interpreter_on_dense_ratings():
    # With a dense R the interpreter's implicit-zero reads coincide with the
    # translator's sparse semantics (see sources.py notes).
    inputs = workload_for_program("matrix_factorization", 6)
    inputs["R"] = generators.random_matrix(6, 6, seed=3)
    spec, distributed, sequential = run_both("matrix_factorization", inputs)
    assert_same_outputs(spec, distributed, sequential)


def test_pagerank_two_steps_matches_interpreter():
    inputs = workload_for_program("pagerank", 30)
    inputs["num_steps"] = 2
    spec, distributed, sequential = run_both("pagerank", inputs)
    assert_same_outputs(spec, distributed, sequential)


def test_every_benchmark_program_compiles():
    for name, spec in PROGRAMS.items():
        diablo = diablo_for(spec)
        compiled = diablo.compile(spec.source)
        assert compiled.target.statements, name


def test_unoptimized_translation_is_still_sound():
    inputs = workload_for_program("word_count", 200)
    spec = get_program("word_count")
    diablo = diablo_for(spec, optimize=False)
    distributed = diablo.compile(spec.source).run(**inputs)
    sequential = diablo.interpret(spec.source, dict(inputs))
    assert distributed.array("C") == sequential["C"]


def test_matrix_multiplication_matches_numpy():
    numpy = pytest.importorskip("numpy")
    size = 6
    inputs = workload_for_program("matrix_multiplication", size)
    spec = get_program("matrix_multiplication")
    diablo = diablo_for(spec)
    result = diablo.compile(spec.source).run(**inputs).array("R")
    left = numpy.array([[inputs["M"][(i, j)] for j in range(size)] for i in range(size)])
    right = numpy.array([[inputs["N"][(i, j)] for j in range(size)] for i in range(size)])
    expected = left @ right
    for i in range(size):
        for j in range(size):
            assert abs(result[(i, j)] - expected[i, j]) < 1e-9
