"""Tests for the synthetic workload generators and the RMAT graph generator."""

import pytest

from repro.programs import PROGRAMS
from repro.workloads import generators, rmat, workload_for_program


class TestGenerators:
    def test_random_doubles_range_and_determinism(self):
        values = generators.random_doubles(100, seed=3)
        assert len(values) == 100
        assert all(0.0 <= v < 200.0 for v in values)
        assert values == generators.random_doubles(100, seed=3)

    def test_random_strings_vocabulary(self):
        words = generators.random_strings(500, vocabulary=10, seed=3)
        assert len(set(words)) <= 10
        assert all(len(word) == 4 for word in words)

    def test_random_pixels_fields(self):
        pixels = generators.random_pixels(10)
        assert all(set(p) == {"red", "green", "blue"} for p in pixels)
        assert all(0 <= p["red"] < 256 for p in pixels)

    def test_linear_points_structure(self):
        points = generators.linear_points(50)
        assert all(x > y for x, y in points)

    def test_grouped_pairs_duplicates(self):
        records = generators.grouped_pairs(200, duplicates_per_key=10)
        keys = {r["K"] for r in records}
        assert len(keys) <= 20

    def test_random_matrix_is_dense(self):
        matrix = generators.random_matrix(4, 5)
        assert len(matrix) == 20

    def test_sparse_matrix_density(self):
        matrix = generators.sparse_matrix(20, 20, density=0.1, seed=5)
        assert 0 < len(matrix) < 150

    def test_kmeans_grid_covers_every_square(self):
        points = generators.kmeans_grid_points(150, grid=10)
        squares = {(int((x - 1) // 2), int((y - 1) // 2)) for x, y in points[:100]}
        assert len(squares) == 100

    def test_kmeans_centroids(self):
        centroids = generators.kmeans_initial_centroids()
        assert len(centroids) == 100
        assert centroids[0] == (1.2, 1.2)
        assert generators.kmeans_true_centroids()[0] == (1.5, 1.5)

    def test_workloads_exist_for_every_program(self):
        for name in PROGRAMS:
            inputs = workload_for_program(name, 10)
            assert inputs, name

    def test_unknown_program_raises(self):
        with pytest.raises(KeyError):
            workload_for_program("nope", 10)


class TestRmat:
    def test_edge_count_and_vertex_range(self):
        edges = rmat.rmat_graph(50, edges_per_vertex=5, seed=1)
        assert len(edges) <= 50 * 5
        assert len(edges) > 50
        assert all(1 <= s <= 50 and 1 <= t <= 50 for s, t in edges)

    def test_zero_based_ids(self):
        edges = rmat.rmat_graph(20, edges_per_vertex=3, one_based=False, seed=2)
        assert all(0 <= s < 20 and 0 <= t < 20 for s, t in edges)

    def test_no_self_loops_by_default(self):
        edges = rmat.rmat_graph(30, seed=3)
        assert all(s != t for s, t in edges)

    def test_determinism(self):
        assert rmat.rmat_graph(40, seed=9) == rmat.rmat_graph(40, seed=9)

    def test_skewed_degree_distribution(self):
        edges = rmat.rmat_graph(200, edges_per_vertex=8, seed=4)
        degrees = rmat.out_degrees(edges)
        assert max(degrees.values()) > 2 * (len(edges) / 200)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            rmat.rmat_graph(10, probabilities=(0.5, 0.5, 0.5, 0.5))

    def test_adjacency_matrix(self):
        edges = [(1, 2), (2, 3)]
        assert rmat.adjacency_matrix(edges) == {(1, 2): True, (2, 3): True}
