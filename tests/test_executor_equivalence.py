"""Differential harness for the lazy fusing engine and its executor modes.

Every Figure 3 workload is run through the sequential loop-language
interpreter (the correctness oracle) and through the translated plan under
all three executor modes (``sequential``, ``threads``, ``processes``); all
four results must agree.  Property-style tests check that operator fusion is
observable only in the narrow-stage metrics: fused pipelines preserve
partitioner metadata and leave the shuffle/record metrics untouched.
"""

from __future__ import annotations

import functools
import operator

import pytest

from test_soundness_programs import assert_same_outputs, values_match

from repro.errors import ExecutionError
from repro.evaluation.harness import diablo_for, translated_outputs
from repro.programs import get_program, table2_program_names
from repro.runtime.context import EXECUTOR_MODES, DistributedContext
from repro.runtime.partitioner import HashPartitioner
from repro.workloads import generators, workload_for_program

#: Workload sizes small enough for the tree-walking interpreter oracle.
SIZES = {
    "conditional_sum": 300,
    "equal": 200,
    "string_match": 200,
    "word_count": 400,
    "histogram": 200,
    "linear_regression": 200,
    "group_by": 300,
    "matrix_addition": 6,
    "matrix_multiplication": 5,
    "pagerank": 40,
    "kmeans": 220,
    "matrix_factorization": 6,
}


def workload(name: str) -> dict:
    inputs = workload_for_program(name, SIZES[name])
    if name == "matrix_factorization":
        # With a dense R the interpreter's implicit-zero reads coincide with
        # the translator's sparse semantics (see sources.py notes).
        inputs["R"] = generators.random_matrix(SIZES[name], SIZES[name], seed=3)
    return inputs


@functools.lru_cache(maxsize=None)
def interpreter_outputs(name: str) -> dict:
    """The sequential-interpreter oracle, computed once per program."""
    spec = get_program(name)
    return diablo_for(spec).interpret(spec.source, dict(workload(name)))


def run_translated_under(name: str, mode: str, spill_threshold_bytes: int | None = None) -> dict:
    spec = get_program(name)
    with DistributedContext(
        num_partitions=4, executor=mode, spill_threshold_bytes=spill_threshold_bytes
    ) as context:
        diablo = diablo_for(spec, context)
        result = diablo.compile(spec.source).run(**workload(name))
        outputs = translated_outputs(name, result)
        if spill_threshold_bytes is not None and context.metrics.shuffles > 0:
            assert context.metrics.spilled_bytes > 0, f"{name}: shuffled but never spilled"
            assert context.metrics.spill_files > 0
        return outputs


class _Outputs:
    """Adapter so assert_same_outputs can read plain output dicts."""

    def __init__(self, outputs: dict):
        self._outputs = outputs

    def __getitem__(self, name):
        return self._outputs[name]

    def array(self, name):
        return self._outputs[name]


@pytest.mark.parametrize("mode", EXECUTOR_MODES)
@pytest.mark.parametrize("name", table2_program_names())
def test_every_figure3_workload_matches_interpreter(name, mode):
    spec = get_program(name)
    translated = run_translated_under(name, mode)
    assert_same_outputs(spec, _Outputs(translated), interpreter_outputs(name))


@pytest.mark.parametrize("name", ["word_count", "pagerank", "kmeans"])
def test_executor_modes_agree_exactly(name):
    """The three executors run the same plan, so results are bit-identical."""
    by_mode = {mode: run_translated_under(name, mode) for mode in EXECUTOR_MODES}
    reference = by_mode["sequential"]
    for mode in ("threads", "processes"):
        assert by_mode[mode] == reference, f"{name}: {mode} differs from sequential"


# ---------------------------------------------------------------------------
# Fusion properties
# ---------------------------------------------------------------------------


class TestFusion:
    def test_chain_runs_as_one_pass_with_no_intermediates(self):
        """map→filter→map_values executes as one run_tasks pass and allocates
        zero intermediate Datasets (the Issue 1 acceptance criterion)."""
        ctx = DistributedContext(num_partitions=4)
        base = ctx.parallelize([(i, i) for i in range(40)]).materialize()
        ctx.metrics.reset()
        chained = (
            base.map(lambda pair: (pair[0], pair[1] + 1))
            .filter(lambda pair: pair[1] % 2 == 0)
            .map_values(lambda value: value * 10)
        )
        assert ctx.metrics.datasets_created == 0, "chaining must not materialize"
        assert ctx.metrics.narrow_tasks == 0
        result = chained.collect_as_map()
        assert ctx.metrics.datasets_created == 1, "one dataset for the whole chain"
        assert ctx.metrics.fused_stages == 1, "one fused pass, not three"
        assert ctx.metrics.fused_operators == 3
        assert ctx.metrics.narrow_tasks == base.num_partitions
        assert result == {i: (i + 1) * 10 for i in range(40) if (i + 1) % 2 == 0}

    def test_fused_pipeline_preserves_partitioner_metadata(self):
        ctx = DistributedContext(num_partitions=4)
        partitioner = HashPartitioner(4)
        placed = ctx.parallelize([(i, i) for i in range(20)]).partition_by(partitioner)
        pipeline = placed.filter(lambda p: p[0] > 2).map_values(lambda v: v + 1).sample(0.9)
        assert pipeline.partitioner == partitioner, "pending chain keeps the partitioner"
        pipeline.materialize()
        assert pipeline.partitioner == partitioner, "forcing keeps the partitioner"
        assert placed.map(lambda p: p).partitioner is None, "map drops the partitioner"

    def test_fusion_does_not_change_shuffle_metrics(self):
        """The same pipeline forced per-operator (cache between every op) and
        fully fused must shuffle the same stages and records."""

        def pipeline(ctx, step):
            ds = ctx.parallelize([(i % 7, float(i)) for i in range(200)])
            ds = step(ds.map(lambda p: (p[0], p[1] + 1)))
            ds = step(ds.filter(lambda p: p[0] != 3))
            ds = step(ds.map_values(lambda v: v * 2))
            return ds.reduce_by_key(lambda a, b: a + b).collect_as_map()

        fused_ctx = DistributedContext(num_partitions=4)
        fused_result = pipeline(fused_ctx, lambda ds: ds)
        unfused_ctx = DistributedContext(num_partitions=4)
        unfused_result = pipeline(unfused_ctx, lambda ds: ds.cache())

        assert fused_result == unfused_result
        fused, unfused = fused_ctx.metrics, unfused_ctx.metrics
        assert fused.shuffles == unfused.shuffles
        assert fused.shuffled_records == unfused.shuffled_records
        assert fused.shuffle_operations == unfused.shuffle_operations
        # Fusion is visible only in the narrow-stage counters.
        assert fused.fused_stages == 1
        assert unfused.fused_stages == 3

    def test_shuffle_metrics_identical_across_executors(self):
        snapshots = {}
        for mode in EXECUTOR_MODES:
            with DistributedContext(num_partitions=4, executor=mode) as ctx:
                ds = ctx.parallelize([(i % 5, i) for i in range(100)])
                ds.map_values(lambda v: v + 1).reduce_by_key(lambda a, b: a + b).collect()
                snapshot = ctx.metrics.snapshot()
                # Executor-specific by design: where the tasks ran, not what
                # the plan moved.
                snapshot.pop("process_fallbacks")
                snapshot.pop("parallel_tasks")
                snapshots[mode] = snapshot
        assert snapshots["sequential"] == snapshots["threads"] == snapshots["processes"]


# ---------------------------------------------------------------------------
# Wide operators: every executor mode vs. a plain-Python oracle
# ---------------------------------------------------------------------------

# Module-level functions so the stage chains pickle and the "processes"
# executor genuinely ships the map and reduce sides to worker processes.


def _add(a, b):
    return a + b


def _key_value(i):
    # String keys on purpose: worker processes have different hash seeds, so
    # this exercises the process-stable partitioner hashing.
    return (f"k{i % 7}", i)


def _pair_sum(a, b):
    return (a[0] + b[0], a[1] + b[1])


def _seq_count_sum(acc, value):
    return (acc[0] + 1, acc[1] + value)


def _identity(x):
    return x


#: Left/right key-value inputs shared by the join/co_group oracle tests;
#: overlapping, disjoint and duplicated keys included.
_LEFT_PAIRS = [(f"k{i % 5}", i) for i in range(40)]
_RIGHT_PAIRS = [(f"k{i % 8}", i * 10) for i in range(24)]


def _wide_pipelines(ctx):
    """Every wide operator, as (name, thunk) pairs over fresh datasets."""
    records = [i - 30 for i in range(120)]
    pairs = [_key_value(i) for i in range(150)]
    left = ctx.parallelize(_LEFT_PAIRS)
    right = ctx.parallelize(_RIGHT_PAIRS)
    return [
        ("group_by_key", lambda: sorted(
            (k, sorted(vs)) for k, vs in ctx.parallelize(pairs).group_by_key().collect()
        )),
        ("reduce_by_key", lambda: sorted(
            ctx.parallelize(pairs).reduce_by_key(_add).collect()
        )),
        ("aggregate_by_key", lambda: sorted(
            ctx.parallelize(pairs).aggregate_by_key((0, 0), _seq_count_sum, _pair_sum).collect()
        )),
        ("distinct", lambda: sorted(
            ctx.parallelize([i % 9 for i in range(90)]).distinct().collect()
        )),
        ("sort_by", lambda: ctx.parallelize(records).sort_by(_identity).collect()),
        ("sort_by_desc", lambda: ctx.parallelize(records).sort_by(_identity, ascending=False).collect()),
        ("repartition", lambda: sorted(ctx.parallelize(records).repartition(3).collect())),
        ("co_group", lambda: sorted(
            (k, (sorted(ls), sorted(rs))) for k, (ls, rs) in left.co_group(right).collect()
        )),
        ("join", lambda: sorted(left.join(right, strategy="shuffle").collect())),
        ("join_broadcast", lambda: sorted(left.join(right, strategy="broadcast").collect())),
        ("left_outer_join", lambda: sorted(left.left_outer_join(right).collect())),
        ("right_outer_join", lambda: sorted(left.right_outer_join(right).collect())),
        ("full_outer_join", lambda: sorted(left.full_outer_join(right).collect())),
    ]


def _oracle_results():
    """Plain-Python reference results for :func:`_wide_pipelines`."""
    records = [i - 30 for i in range(120)]
    pairs = [_key_value(i) for i in range(150)]
    groups: dict = {}
    for k, v in pairs:
        groups.setdefault(k, []).append(v)
    left_groups: dict = {}
    for k, v in _LEFT_PAIRS:
        left_groups.setdefault(k, []).append(v)
    right_groups: dict = {}
    for k, v in _RIGHT_PAIRS:
        right_groups.setdefault(k, []).append(v)
    all_keys = set(left_groups) | set(right_groups)
    inner = sorted(
        (k, (a, b)) for k in all_keys for a in left_groups.get(k, []) for b in right_groups.get(k, [])
    )
    left_outer = sorted(
        (k, (a, b))
        for k in left_groups
        for a in left_groups[k]
        for b in (right_groups.get(k) or [None])
    )
    right_outer = sorted(
        (k, (a, b))
        for k in right_groups
        for b in right_groups[k]
        for a in (left_groups.get(k) or [None])
    )
    # Full outer = every left row (None-filled when unmatched) plus the
    # unmatched right rows.
    full_outer = sorted(
        left_outer
        + [(k, (None, b)) for k in right_groups if k not in left_groups for b in right_groups[k]]
    )
    return {
        "group_by_key": sorted((k, sorted(vs)) for k, vs in groups.items()),
        "reduce_by_key": sorted((k, sum(vs)) for k, vs in groups.items()),
        "aggregate_by_key": sorted((k, (len(vs), sum(vs))) for k, vs in groups.items()),
        "distinct": sorted(set(i % 9 for i in range(90))),
        "sort_by": sorted(records),
        "sort_by_desc": sorted(records, reverse=True),
        "repartition": sorted(records),
        "co_group": sorted(
            (k, (sorted(left_groups.get(k, [])), sorted(right_groups.get(k, []))))
            for k in all_keys
        ),
        "join": inner,
        "join_broadcast": inner,
        "left_outer_join": left_outer,
        "right_outer_join": right_outer,
        "full_outer_join": full_outer,
    }


class TestWideOperatorEquivalence:
    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_wide_operators_match_oracle_under_every_executor(self, mode):
        oracle = _oracle_results()
        with DistributedContext(num_partitions=4, executor=mode) as ctx:
            for name, thunk in _wide_pipelines(ctx):
                assert thunk() == oracle[name], f"{name} diverged under {mode!r}"

    def test_wide_operator_metrics_identical_across_executors(self):
        """Shuffle structure (stages, records, bytes, combiner effectiveness)
        is a function of the plan and the data, not of the executor."""
        snapshots = {}
        for mode in EXECUTOR_MODES:
            with DistributedContext(num_partitions=4, executor=mode) as ctx:
                for _name, thunk in _wide_pipelines(ctx):
                    thunk()
                snapshot = ctx.metrics.snapshot()
                snapshot.pop("process_fallbacks")
                snapshot.pop("parallel_tasks")
                snapshots[mode] = snapshot
        assert snapshots["sequential"] == snapshots["threads"] == snapshots["processes"]

    def test_sort_by_key_output_keeps_a_range_partitioner(self):
        from repro.runtime.partitioner import RangePartitioner

        with DistributedContext(num_partitions=4) as ctx:
            pairs = [(i % 50, i) for i in range(200)]
            ordered = ctx.parallelize(pairs).sort_by_key()
            ordered.materialize()
            assert isinstance(ordered.partitioner, RangePartitioner)
            # Every partition holds one contiguous key range.
            previous_max = None
            for partition in ordered.partitions:
                if not partition:
                    continue
                if previous_max is not None:
                    assert partition[0][0] >= previous_max
                previous_max = partition[-1][0]
            # The partitioner is *usable*: a follow-up keyed shuffle honors it.
            regrouped = ordered.reduce_by_key(_add)
            assert len(regrouped.collect()) == 50

    def test_sort_by_arbitrary_key_drops_the_partitioner(self):
        # A RangePartitioner over key_function(record) values must NOT be
        # advertised as a record[0] partitioner: downstream keyed shuffles
        # would bucket with the wrong key type.
        with DistributedContext(num_partitions=4) as ctx:
            pairs = [(f"k{i}", i % 13) for i in range(60)]
            by_value = ctx.parallelize(pairs).sort_by(lambda pair: pair[1])
            assert by_value.partitioner is None
            # The regression: this used to crash comparing str keys against
            # the int range bounds inherited from the sort.
            regrouped = by_value.reduce_by_key(_add)
            assert len(regrouped.collect()) == 60

    def test_repartition_is_lazy_and_counted_as_a_shuffle(self):
        with DistributedContext(num_partitions=4) as ctx:
            ds = ctx.parallelize(range(40)).map(_identity).repartition(6)
            assert not ds.is_materialized
            assert ctx.metrics.shuffles == 0
            assert ds.num_partitions == 6
            assert sorted(ds.collect()) == list(range(40))
            assert ctx.metrics.shuffle_operations.get("repartition") == 1


# ---------------------------------------------------------------------------
# Out-of-core shuffles: the spill path must be invisible in the results
# ---------------------------------------------------------------------------

#: Forces every shuffled record straight to disk -- the harshest spill setting.
TINY_SPILL = 1

#: Figure 3 programs whose translation actually shuffles (the wide-operator
#: differential set; the rest are pure narrow pipelines with nothing to spill).
SPILLING_PROGRAMS = (
    "word_count",
    "histogram",
    "group_by",
    "matrix_addition",
    "matrix_multiplication",
    "pagerank",
    "kmeans",
    "matrix_factorization",
)


class TestSpillEquivalence:
    """The acceptance criterion of the out-of-core shuffle: with a ~1-byte
    budget every wide operator spills every record, and nothing changes."""

    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_wide_operators_spilled_match_oracle_under_every_executor(self, mode):
        oracle = _oracle_results()
        with DistributedContext(
            num_partitions=4, executor=mode, spill_threshold_bytes=TINY_SPILL
        ) as ctx:
            for name, thunk in _wide_pipelines(ctx):
                assert thunk() == oracle[name], f"{name} diverged under spill + {mode!r}"
            assert ctx.metrics.spilled_bytes > 0
            assert ctx.metrics.spill_files > 0
            assert ctx.metrics.peak_shuffle_memory > 0
            assert ctx.shuffle_store.active_shuffle_dirs() == [], (
                "per-shuffle spill dirs must be removed as soon as each shuffle completes"
            )

    def test_spill_metrics_identical_across_executors(self):
        """Spill traffic is a function of the plan, the data and the budget
        -- not of the executor (runs are flushed at deterministic points)."""
        snapshots = {}
        for mode in EXECUTOR_MODES:
            with DistributedContext(
                num_partitions=4, executor=mode, spill_threshold_bytes=TINY_SPILL
            ) as ctx:
                for _name, thunk in _wide_pipelines(ctx):
                    thunk()
                snapshot = ctx.metrics.snapshot()
                snapshot.pop("process_fallbacks")
                snapshot.pop("parallel_tasks")
                snapshots[mode] = snapshot
        assert snapshots["sequential"] == snapshots["threads"] == snapshots["processes"]

    def test_spilled_results_equal_in_memory_results(self, monkeypatch):
        """The same pipelines with and without spilling are bit-identical --
        unsorted, so output ordering is covered too."""
        # The nightly job exports DIABLO_SPILL_THRESHOLD_BYTES, which would
        # silently turn harvest(None) into a second spilled run and make
        # this comparison vacuous; pin the in-memory side down.
        monkeypatch.delenv("DIABLO_SPILL_THRESHOLD_BYTES", raising=False)

        def harvest(threshold):
            with DistributedContext(num_partitions=4, spill_threshold_bytes=threshold) as ctx:
                pairs = [_key_value(i) for i in range(150)]
                return {
                    "reduce": ctx.parallelize(pairs).reduce_by_key(_add).collect(),
                    "group": ctx.parallelize(pairs).group_by_key().collect(),
                    "sort": ctx.parallelize([i % 13 for i in range(120)]).sort_by(_identity).collect(),
                    "sort_desc": ctx.parallelize([i % 13 for i in range(120)])
                    .sort_by(_identity, ascending=False)
                    .collect(),
                    "join": ctx.parallelize(_LEFT_PAIRS)
                    .join(ctx.parallelize(_RIGHT_PAIRS), strategy="shuffle")
                    .collect(),
                    "repartition": ctx.parallelize(range(75)).repartition(3).collect(),
                }

        assert harvest(None) == harvest(TINY_SPILL)

    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    @pytest.mark.parametrize("name", SPILLING_PROGRAMS)
    def test_figure3_wide_workloads_spilled_match_interpreter(self, name, mode):
        spec = get_program(name)
        translated = run_translated_under(name, mode, spill_threshold_bytes=TINY_SPILL)
        assert_same_outputs(spec, _Outputs(translated), interpreter_outputs(name))

    def test_spill_files_cleaned_up_after_context_close(self, tmp_path):
        ctx = DistributedContext(
            num_partitions=4, spill_threshold_bytes=TINY_SPILL, spill_dir=str(tmp_path)
        )
        ctx.parallelize([_key_value(i) for i in range(80)]).group_by_key().collect()
        root = ctx.shuffle_store.root
        assert root is not None and root.startswith(str(tmp_path))
        ctx.close()
        import os

        assert not os.path.exists(root), "close() must remove the spill root"

    def test_spill_files_cleaned_up_after_crash(self, tmp_path):
        """A reduce-side failure mid-shuffle must not leak the shuffle's
        spill directory."""
        with DistributedContext(
            num_partitions=4, spill_threshold_bytes=TINY_SPILL, spill_dir=str(tmp_path)
        ) as ctx:
            # Keys are unique within each (contiguous) partition, so the
            # map-side combiner never calls the function and the map side
            # spills successfully; keys repeat across partitions, so the
            # reduce-side merge calls it and crashes mid-shuffle.
            pairs = ctx.parallelize([(f"k{i}", i) for i in range(15)] * 2)
            with pytest.raises(ZeroDivisionError):
                pairs.reduce_by_key(_failing_combine).collect()
            assert ctx.metrics.spilled_bytes > 0, "the map side must have spilled first"
            assert ctx.shuffle_store.active_shuffle_dirs() == [], (
                "failed shuffles must clean their spill dirs"
            )


def _failing_combine(_a, _b):
    raise ZeroDivisionError("reduce-side boom")


# ---------------------------------------------------------------------------
# Join strategy selection
# ---------------------------------------------------------------------------


class TestJoinStrategySelection:
    def _sides(self, ctx, right_size):
        left = ctx.parallelize([(i % 10, i) for i in range(100)])
        right = ctx.parallelize([(k, k * 100) for k in range(right_size)])
        return left, right

    def test_small_side_at_threshold_is_broadcast(self):
        with DistributedContext(num_partitions=4, broadcast_join_threshold=8) as ctx:
            left, right = self._sides(ctx, 8)  # exactly at the threshold
            result = sorted(left.join(right).collect())
            assert ctx.metrics.join_strategies == {"broadcast": 1}
            assert ctx.metrics.shuffle_operations.get("join") is None
            assert result == sorted(
                (i % 10, (i, (i % 10) * 100)) for i in range(100) if i % 10 < 8
            )

    def test_side_above_threshold_shuffles(self):
        with DistributedContext(num_partitions=4, broadcast_join_threshold=8) as ctx:
            left, right = self._sides(ctx, 9)  # one past the threshold
            left.join(right).materialize()
            assert ctx.metrics.join_strategies == {"shuffle": 1}
            assert ctx.metrics.shuffle_operations.get("join") == 1

    def test_broadcast_and_shuffle_agree_on_results(self):
        for how in ("join", "left_outer_join", "right_outer_join"):
            with DistributedContext(num_partitions=4) as ctx:
                left, right = self._sides(ctx, 7)
                broadcast = sorted(getattr(left, how)(right, strategy="broadcast").collect())
                shuffled = sorted(getattr(left, how)(right, strategy="shuffle").collect())
                assert broadcast == shuffled, how

    def test_full_outer_join_never_broadcasts(self):
        with DistributedContext(num_partitions=4, broadcast_join_threshold=1_000) as ctx:
            left, right = self._sides(ctx, 4)
            left.full_outer_join(right).materialize()
            assert ctx.metrics.join_strategies == {"shuffle": 1}

    def test_invalid_strategy_rejected(self):
        with DistributedContext(num_partitions=4) as ctx:
            left, right = self._sides(ctx, 4)
            with pytest.raises(ValueError):
                left.join(right, strategy="sideways")


# ---------------------------------------------------------------------------
# Executor dispatch of wide stages (the Issue 2 acceptance criterion)
# ---------------------------------------------------------------------------


class TestWideStageDispatch:
    def test_groupby_join_pipeline_runs_on_the_process_pool(self):
        """Map side and reduce side of a groupBy/join pipeline both dispatch
        through ``run_tasks``: in "processes" mode with picklable stages the
        executor task count is positive and nothing falls back."""
        with DistributedContext(num_partitions=4, executor="processes") as ctx:
            keyed = ctx.parallelize(range(200)).map(_key_value)
            grouped = keyed.reduce_by_key(_add)
            lookup = ctx.parallelize([(f"k{i}", i) for i in range(7)])
            joined = grouped.join(lookup, strategy="shuffle")
            result = sorted(joined.collect())
            assert len(result) == 7
            assert ctx.metrics.parallel_tasks > 0
            assert ctx.metrics.process_fallbacks == 0
            assert ctx.metrics.shuffle_map_tasks > 0
            assert ctx.metrics.shuffle_reduce_tasks > 0

    def test_unpicklable_wide_stage_falls_back_to_driver(self):
        captured = {"offset": 1}
        with DistributedContext(num_partitions=4, executor="processes") as ctx:
            ds = ctx.parallelize([(i % 5, i) for i in range(50)])
            result = ds.reduce_by_key(lambda a, b: a + b + captured["offset"] - 1)
            assert len(result.collect()) == 5
            assert ctx.metrics.process_fallbacks > 0


# ---------------------------------------------------------------------------
# Process-executor behavior
# ---------------------------------------------------------------------------


def _failing_step(_value):
    raise ZeroDivisionError("boom")


def _failing_os_step(_value):
    raise FileNotFoundError("no such file: boom")


class TestProcessExecutor:
    def test_picklable_chain_crosses_the_process_boundary(self):
        with DistributedContext(num_partitions=4, executor="processes") as ctx:
            ds = ctx.parallelize(range(100)).map(functools.partial(operator.mul, 3))
            assert sorted(ds.collect()) == [3 * i for i in range(100)]
            assert ctx.metrics.process_fallbacks == 0

    def test_unpicklable_lambda_falls_back_to_driver(self):
        with DistributedContext(num_partitions=4, executor="processes") as ctx:
            captured = {"offset": 7}
            ds = ctx.parallelize(range(50)).map(lambda x: x + captured["offset"])
            assert sorted(ds.collect()) == [i + 7 for i in range(50)]
            assert ctx.metrics.process_fallbacks == 1

    def test_worker_errors_surface_as_execution_errors(self):
        with DistributedContext(num_partitions=4, executor="processes") as ctx:
            with pytest.raises(ExecutionError):
                ctx.parallelize(range(8)).map(_failing_step).collect()

    def test_os_errors_from_user_code_are_task_errors_not_fallbacks(self):
        # Regression: OSError subclasses raised by user code must not be
        # mistaken for pool-infrastructure failures (which would silently
        # re-run the job in the driver and leak the raw exception).
        with DistributedContext(num_partitions=4, executor="processes") as ctx:
            with pytest.raises(ExecutionError):
                ctx.parallelize(range(8)).map(_failing_os_step).collect()
            assert ctx.metrics.process_fallbacks == 0

    def test_values_match_helper_tolerates_float_noise(self):
        assert values_match(1.0, 1.0 + 1e-12)
        assert not values_match(1.0, 1.1)
