"""Differential harness for the lazy fusing engine and its executor modes.

Every Figure 3 workload is run through the sequential loop-language
interpreter (the correctness oracle) and through the translated plan under
all three executor modes (``sequential``, ``threads``, ``processes``); all
four results must agree.  Property-style tests check that operator fusion is
observable only in the narrow-stage metrics: fused pipelines preserve
partitioner metadata and leave the shuffle/record metrics untouched.
"""

from __future__ import annotations

import functools
import operator

import pytest

from test_soundness_programs import assert_same_outputs, values_match

from repro.errors import ExecutionError
from repro.evaluation.harness import diablo_for, translated_outputs
from repro.programs import get_program, table2_program_names
from repro.runtime.context import EXECUTOR_MODES, DistributedContext
from repro.runtime.partitioner import HashPartitioner
from repro.workloads import generators, workload_for_program

#: Workload sizes small enough for the tree-walking interpreter oracle.
SIZES = {
    "conditional_sum": 300,
    "equal": 200,
    "string_match": 200,
    "word_count": 400,
    "histogram": 200,
    "linear_regression": 200,
    "group_by": 300,
    "matrix_addition": 6,
    "matrix_multiplication": 5,
    "pagerank": 40,
    "kmeans": 220,
    "matrix_factorization": 6,
}


def workload(name: str) -> dict:
    inputs = workload_for_program(name, SIZES[name])
    if name == "matrix_factorization":
        # With a dense R the interpreter's implicit-zero reads coincide with
        # the translator's sparse semantics (see sources.py notes).
        inputs["R"] = generators.random_matrix(SIZES[name], SIZES[name], seed=3)
    return inputs


@functools.lru_cache(maxsize=None)
def interpreter_outputs(name: str) -> dict:
    """The sequential-interpreter oracle, computed once per program."""
    spec = get_program(name)
    return diablo_for(spec).interpret(spec.source, dict(workload(name)))


def run_translated_under(name: str, mode: str) -> dict:
    spec = get_program(name)
    with DistributedContext(num_partitions=4, executor=mode) as context:
        diablo = diablo_for(spec, context)
        result = diablo.compile(spec.source).run(**workload(name))
        return translated_outputs(name, result)


class _Outputs:
    """Adapter so assert_same_outputs can read plain output dicts."""

    def __init__(self, outputs: dict):
        self._outputs = outputs

    def __getitem__(self, name):
        return self._outputs[name]

    def array(self, name):
        return self._outputs[name]


@pytest.mark.parametrize("mode", EXECUTOR_MODES)
@pytest.mark.parametrize("name", table2_program_names())
def test_every_figure3_workload_matches_interpreter(name, mode):
    spec = get_program(name)
    translated = run_translated_under(name, mode)
    assert_same_outputs(spec, _Outputs(translated), interpreter_outputs(name))


@pytest.mark.parametrize("name", ["word_count", "pagerank", "kmeans"])
def test_executor_modes_agree_exactly(name):
    """The three executors run the same plan, so results are bit-identical."""
    by_mode = {mode: run_translated_under(name, mode) for mode in EXECUTOR_MODES}
    reference = by_mode["sequential"]
    for mode in ("threads", "processes"):
        assert by_mode[mode] == reference, f"{name}: {mode} differs from sequential"


# ---------------------------------------------------------------------------
# Fusion properties
# ---------------------------------------------------------------------------


class TestFusion:
    def test_chain_runs_as_one_pass_with_no_intermediates(self):
        """map→filter→map_values executes as one run_tasks pass and allocates
        zero intermediate Datasets (the Issue 1 acceptance criterion)."""
        ctx = DistributedContext(num_partitions=4)
        base = ctx.parallelize([(i, i) for i in range(40)]).materialize()
        ctx.metrics.reset()
        chained = (
            base.map(lambda pair: (pair[0], pair[1] + 1))
            .filter(lambda pair: pair[1] % 2 == 0)
            .map_values(lambda value: value * 10)
        )
        assert ctx.metrics.datasets_created == 0, "chaining must not materialize"
        assert ctx.metrics.narrow_tasks == 0
        result = chained.collect_as_map()
        assert ctx.metrics.datasets_created == 1, "one dataset for the whole chain"
        assert ctx.metrics.fused_stages == 1, "one fused pass, not three"
        assert ctx.metrics.fused_operators == 3
        assert ctx.metrics.narrow_tasks == base.num_partitions
        assert result == {i: (i + 1) * 10 for i in range(40) if (i + 1) % 2 == 0}

    def test_fused_pipeline_preserves_partitioner_metadata(self):
        ctx = DistributedContext(num_partitions=4)
        partitioner = HashPartitioner(4)
        placed = ctx.parallelize([(i, i) for i in range(20)]).partition_by(partitioner)
        pipeline = placed.filter(lambda p: p[0] > 2).map_values(lambda v: v + 1).sample(0.9)
        assert pipeline.partitioner == partitioner, "pending chain keeps the partitioner"
        pipeline.materialize()
        assert pipeline.partitioner == partitioner, "forcing keeps the partitioner"
        assert placed.map(lambda p: p).partitioner is None, "map drops the partitioner"

    def test_fusion_does_not_change_shuffle_metrics(self):
        """The same pipeline forced per-operator (cache between every op) and
        fully fused must shuffle the same stages and records."""

        def pipeline(ctx, step):
            ds = ctx.parallelize([(i % 7, float(i)) for i in range(200)])
            ds = step(ds.map(lambda p: (p[0], p[1] + 1)))
            ds = step(ds.filter(lambda p: p[0] != 3))
            ds = step(ds.map_values(lambda v: v * 2))
            return ds.reduce_by_key(lambda a, b: a + b).collect_as_map()

        fused_ctx = DistributedContext(num_partitions=4)
        fused_result = pipeline(fused_ctx, lambda ds: ds)
        unfused_ctx = DistributedContext(num_partitions=4)
        unfused_result = pipeline(unfused_ctx, lambda ds: ds.cache())

        assert fused_result == unfused_result
        fused, unfused = fused_ctx.metrics, unfused_ctx.metrics
        assert fused.shuffles == unfused.shuffles
        assert fused.shuffled_records == unfused.shuffled_records
        assert fused.shuffle_operations == unfused.shuffle_operations
        # Fusion is visible only in the narrow-stage counters.
        assert fused.fused_stages == 1
        assert unfused.fused_stages == 3

    def test_shuffle_metrics_identical_across_executors(self):
        snapshots = {}
        for mode in EXECUTOR_MODES:
            with DistributedContext(num_partitions=4, executor=mode) as ctx:
                ds = ctx.parallelize([(i % 5, i) for i in range(100)])
                ds.map_values(lambda v: v + 1).reduce_by_key(lambda a, b: a + b).collect()
                snapshot = ctx.metrics.snapshot()
                snapshot.pop("process_fallbacks")  # executor-specific by design
                snapshots[mode] = snapshot
        assert snapshots["sequential"] == snapshots["threads"] == snapshots["processes"]


# ---------------------------------------------------------------------------
# Process-executor behavior
# ---------------------------------------------------------------------------


def _failing_step(_value):
    raise ZeroDivisionError("boom")


def _failing_os_step(_value):
    raise FileNotFoundError("no such file: boom")


class TestProcessExecutor:
    def test_picklable_chain_crosses_the_process_boundary(self):
        with DistributedContext(num_partitions=4, executor="processes") as ctx:
            ds = ctx.parallelize(range(100)).map(functools.partial(operator.mul, 3))
            assert sorted(ds.collect()) == [3 * i for i in range(100)]
            assert ctx.metrics.process_fallbacks == 0

    def test_unpicklable_lambda_falls_back_to_driver(self):
        with DistributedContext(num_partitions=4, executor="processes") as ctx:
            captured = {"offset": 7}
            ds = ctx.parallelize(range(50)).map(lambda x: x + captured["offset"])
            assert sorted(ds.collect()) == [i + 7 for i in range(50)]
            assert ctx.metrics.process_fallbacks == 1

    def test_worker_errors_surface_as_execution_errors(self):
        with DistributedContext(num_partitions=4, executor="processes") as ctx:
            with pytest.raises(ExecutionError):
                ctx.parallelize(range(8)).map(_failing_step).collect()

    def test_os_errors_from_user_code_are_task_errors_not_fallbacks(self):
        # Regression: OSError subclasses raised by user code must not be
        # mistaken for pool-infrastructure failures (which would silently
        # re-run the job in the driver and leak the raw exception).
        with DistributedContext(num_partitions=4, executor="processes") as ctx:
            with pytest.raises(ExecutionError):
                ctx.parallelize(range(8)).map(_failing_os_step).collect()
            assert ctx.metrics.process_fallbacks == 0

    def test_values_match_helper_tolerates_float_noise(self):
        assert values_match(1.0, 1.0 + 1e-12)
        assert not values_match(1.0, 1.1)
