"""Tests for the commutative monoid registry and the KMeans record monoids."""

import pytest

from repro.comprehension.monoids import (
    ArgMin,
    Avg,
    Monoid,
    MonoidRegistry,
    argmin_monoid,
    avg_monoid,
    builtin_monoids,
)


class TestBuiltinMonoids:
    def test_builtin_symbols(self):
        registry = MonoidRegistry()
        for symbol in ["+", "*", "min", "max", "&&", "||"]:
            assert symbol in registry

    def test_addition(self):
        monoid = MonoidRegistry().get("+")
        assert monoid.identity() == 0
        assert monoid.combine(2, 3) == 5
        assert monoid.reduce([1, 2, 3, 4]) == 10

    def test_multiplication(self):
        monoid = MonoidRegistry().get("*")
        assert monoid.reduce([2, 3, 4]) == 24
        assert monoid.reduce([]) == 1

    def test_logical_monoids(self):
        registry = MonoidRegistry()
        assert registry.get("&&").reduce([True, True, False]) is False
        assert registry.get("||").reduce([False, False, True]) is True
        assert registry.get("&&").reduce([]) is True
        assert registry.get("||").reduce([]) is False

    def test_min_max(self):
        registry = MonoidRegistry()
        assert registry.get("min").reduce([5, 2, 9]) == 2
        assert registry.get("max").reduce([5, 2, 9]) == 9

    def test_builtins_are_fresh_per_call(self):
        assert builtin_monoids() is not builtin_monoids()


class TestRegistry:
    def test_register_and_lookup(self):
        registry = MonoidRegistry()
        registry.register(Monoid("cat", "", lambda a, b: a + b, commutative=False))
        assert "cat" in registry
        assert not registry.is_commutative("cat")

    def test_unknown_symbol_raises(self):
        with pytest.raises(KeyError):
            MonoidRegistry().get("???")

    def test_is_commutative_for_unknown(self):
        assert not MonoidRegistry().is_commutative("???")

    def test_copy_is_independent(self):
        registry = MonoidRegistry()
        clone = registry.copy()
        clone.register(Monoid("@", 0, lambda a, b: a + b))
        assert "@" in clone
        assert "@" not in registry

    def test_register_rejects_non_associative_combine(self):
        from repro.errors import MonoidLawError

        registry = MonoidRegistry()
        with pytest.raises(MonoidLawError):
            registry.register(Monoid("avg2", 0.0, lambda a, b: (a + b) / 2.0))
        assert "avg2" not in registry

    def test_register_rejects_broken_identity(self):
        from repro.errors import MonoidLawError

        registry = MonoidRegistry()
        with pytest.raises(MonoidLawError):
            registry.register(Monoid("@", 0, lambda a, b: a))

    def test_register_rejects_false_commutativity_claim(self):
        from repro.errors import MonoidLawError

        registry = MonoidRegistry()
        with pytest.raises(MonoidLawError):
            registry.register(Monoid("cat2", "", lambda a, b: a + b, commutative=True))

    def test_register_verify_false_skips_probing(self):
        registry = MonoidRegistry()
        registry.register(Monoid("@", 0, lambda a, b: a), verify=False)
        assert "@" in registry

    def test_register_accepts_kmeans_record_monoids(self):
        registry = MonoidRegistry()
        registry.register(argmin_monoid())
        registry.register(avg_monoid())
        assert "^" in registry and "^^" in registry

    def test_symbols_listing(self):
        assert "+" in MonoidRegistry().symbols()


class TestKMeansMonoids:
    def test_argmin_keeps_smaller_distance(self):
        a = ArgMin(1, 5.0)
        b = ArgMin(2, 3.0)
        assert a.combine(b).index == 2
        assert b.combine(a).index == 2

    def test_argmin_monoid_identity_loses(self):
        monoid = argmin_monoid()
        value = monoid.combine(monoid.identity(), ArgMin(7, 1.0))
        assert value.index == 7

    def test_argmin_ties_prefer_first(self):
        a = ArgMin(1, 2.0)
        b = ArgMin(2, 2.0)
        assert a.combine(b).index == 1

    def test_avg_combines_sums_and_counts(self):
        a = Avg((1.0, 2.0), 1)
        b = Avg((3.0, 4.0), 1)
        merged = a.combine(b)
        assert merged.count == 2
        assert merged.value() == (2.0, 3.0)

    def test_avg_scalar_values(self):
        merged = Avg(10.0, 2).combine(Avg(20.0, 3))
        assert merged.value() == 6.0

    def test_avg_monoid_identity(self):
        monoid = avg_monoid()
        merged = monoid.combine(monoid.identity(), Avg((2.0, 2.0), 1))
        assert merged.count == 1

    def test_avg_empty_value(self):
        assert Avg((0.0, 0.0), 0).value() == (0.0, 0.0)
