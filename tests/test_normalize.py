"""Tests for comprehension normalization (Rule 2 and friends)."""

from repro.comprehension import ir
from repro.comprehension.normalize import normalize


def generators_of(comp):
    return [q for q in comp.qualifiers if isinstance(q, ir.Generator)]


class TestUnnesting:
    def test_singleton_generator_becomes_binding(self):
        comp = ir.Comprehension(
            ir.CVar("x"), (ir.Generator(ir.PVar("x"), ir.singleton(ir.CConst(5))),)
        )
        result = normalize(comp)
        assert isinstance(result, ir.Comprehension)
        assert result.head == ir.CConst(5)
        assert not generators_of(result)

    def test_nested_comprehension_is_unnested(self):
        # { x * 2 | x <- { v | (i, v) <- V, i == 1 } }
        inner = ir.Comprehension(
            ir.CVar("v"),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.Condition(ir.CBinOp("==", ir.CVar("i"), ir.CConst(1))),
            ),
        )
        outer = ir.Comprehension(
            ir.CBinOp("*", ir.CVar("x"), ir.CConst(2)),
            (ir.Generator(ir.PVar("x"), inner),),
        )
        result = normalize(outer)
        assert len(generators_of(result)) == 1
        assert generators_of(result)[0].domain == ir.CVar("V")

    def test_unnesting_renames_to_avoid_capture(self):
        # Outer already binds 'v'; the inner 'v' must be renamed.
        inner = ir.Comprehension(
            ir.CVar("v"),
            (ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("W")),),
        )
        outer = ir.Comprehension(
            ir.CTuple((ir.CVar("v"), ir.CVar("x"))),
            (
                ir.Generator(ir.PTuple((ir.PVar("j"), ir.PVar("v"))), ir.CVar("V")),
                ir.Generator(ir.PVar("x"), inner),
            ),
        )
        result = normalize(outer)
        bound = ir.qualifier_variables(result.qualifiers)
        assert len(bound) == len(set(bound)), "inner binders must be renamed apart"

    def test_group_by_inner_comprehension_not_unnested_in_middle(self):
        inner = ir.Comprehension(
            ir.CTuple((ir.CVar("k"), ir.Aggregate("+", ir.CVar("v")))),
            (
                ir.Generator(ir.PTuple((ir.PVar("k"), ir.PVar("v"))), ir.CVar("V")),
                ir.GroupBy(ir.PVar("k"), ir.CVar("k")),
            ),
        )
        outer = ir.Comprehension(
            ir.CVar("y"),
            (
                ir.Generator(ir.PTuple((ir.PVar("a"), ir.PVar("b"))), ir.CVar("W")),
                ir.Generator(ir.PVar("y"), inner),
            ),
        )
        result = normalize(outer)
        # The inner group-by comprehension stays as a generator domain.
        assert any(
            isinstance(q, ir.Generator) and isinstance(q.domain, ir.Comprehension)
            for q in result.qualifiers
        )


class TestConditions:
    def test_conjunction_is_split(self):
        comp = ir.Comprehension(
            ir.CVar("v"),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.Condition(
                    ir.CBinOp(
                        "&&",
                        ir.CBinOp("==", ir.CVar("i"), ir.CConst(1)),
                        ir.CBinOp(">", ir.CVar("v"), ir.CConst(0)),
                    )
                ),
            ),
        )
        result = normalize(comp)
        conditions = [q for q in result.qualifiers if isinstance(q, ir.Condition)]
        assert len(conditions) == 2

    def test_true_condition_dropped(self):
        comp = ir.Comprehension(
            ir.CVar("v"),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.Condition(ir.CConst(True)),
            ),
        )
        result = normalize(comp)
        assert not [q for q in result.qualifiers if isinstance(q, ir.Condition)]

    def test_false_condition_gives_empty_bag(self):
        comp = ir.Comprehension(
            ir.CVar("v"),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.Condition(ir.CConst(False)),
            ),
        )
        assert isinstance(normalize(comp), ir.EmptyBag)

    def test_trivial_equality_dropped(self):
        comp = ir.Comprehension(
            ir.CVar("v"),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.Condition(ir.CBinOp("==", ir.CVar("i"), ir.CVar("i"))),
            ),
        )
        result = normalize(comp)
        assert not [q for q in result.qualifiers if isinstance(q, ir.Condition)]


class TestLetInlining:
    def test_alias_let_is_inlined(self):
        comp = ir.Comprehension(
            ir.CVar("y"),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.LetBinding(ir.PVar("y"), ir.CVar("v")),
            ),
        )
        result = normalize(comp)
        assert result.head == ir.CVar("v")
        assert not [q for q in result.qualifiers if isinstance(q, ir.LetBinding)]

    def test_let_used_after_group_by_is_not_inlined(self):
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("k"), ir.Aggregate("+", ir.CVar("one")))),
            (
                ir.Generator(ir.PTuple((ir.PVar("w"), ir.PVar("v"))), ir.CVar("words")),
                ir.LetBinding(ir.PVar("one"), ir.CConst(1)),
                ir.LetBinding(ir.PVar("k"), ir.CVar("w")),
                ir.GroupBy(ir.PVar("k"), None),
            ),
        )
        result = normalize(comp)
        lets = [q for q in result.qualifiers if isinstance(q, ir.LetBinding)]
        assert any(q.pattern == ir.PVar("one") for q in lets), "lifted binding must survive"

    def test_dead_let_removed(self):
        comp = ir.Comprehension(
            ir.CVar("v"),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.LetBinding(ir.PVar("unused"), ir.CBinOp("+", ir.CVar("v"), ir.CConst(1))),
            ),
        )
        result = normalize(comp)
        assert not [q for q in result.qualifiers if isinstance(q, ir.LetBinding)]

    def test_normalization_is_idempotent(self):
        comp = ir.Comprehension(
            ir.CBinOp("*", ir.CVar("x"), ir.CVar("y")),
            (
                ir.Generator(ir.PVar("x"), ir.singleton(ir.CVar("a"))),
                ir.Generator(ir.PVar("y"), ir.singleton(ir.CVar("b"))),
            ),
        )
        once = normalize(comp)
        twice = normalize(once)
        assert once == twice
