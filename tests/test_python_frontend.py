"""Tests for the Python-function frontend (the `ast`-module based converter)."""

import pytest

from repro.loop_lang import ast
from repro.loop_lang.interpreter import interpret_program
from repro.loop_lang.python_frontend import (
    FrontendError,
    from_python_function,
    from_python_source,
    parse_python_source,
)


class TestConversion:
    def test_for_in_loop(self):
        program = from_python_source(
            """
def word_count(words, C):
    for w in words:
        C[w] += 1
"""
        )
        loop = program.statements[0]
        assert isinstance(loop, ast.ForIn)
        assert isinstance(loop.body, ast.IncrementalUpdate)

    def test_range_loop_bounds_become_inclusive(self):
        program = from_python_source("for i in range(0, 10):\n    s += i\n")
        loop = program.statements[0]
        assert isinstance(loop, ast.ForRange)
        assert loop.upper == ast.Const(9)

    def test_range_with_single_argument(self):
        program = from_python_source("for i in range(5):\n    s += i\n")
        loop = program.statements[0]
        assert loop.lower == ast.Const(0)
        assert loop.upper == ast.Const(4)

    def test_annotated_declaration(self):
        program = from_python_source("total: float = 0.0\n")
        decl = program.statements[0]
        assert isinstance(decl, ast.VarDecl)
        assert decl.type == ast.DOUBLE

    def test_subscript_with_tuple_index(self):
        program = from_python_source("R[i, j] = M[i, j] + N[i, j]\n")
        assign = program.statements[0]
        assert isinstance(assign.destination, ast.Index)
        assert len(assign.destination.indices) == 2

    def test_while_and_if(self):
        program = from_python_source(
            """
while k < 10:
    if k % 2 == 0:
        evens += 1
    k += 1
"""
        )
        loop = program.statements[0]
        assert isinstance(loop, ast.While)

    def test_boolean_operators(self):
        program = from_python_source("c = (a == 1) or (a == 2) and flag\n")
        assert isinstance(program.statements[0].value, ast.BinOp)

    def test_attribute_access(self):
        program = from_python_source("R[p.red] += 1\n")
        update = program.statements[0]
        assert isinstance(update.destination.indices[0], ast.Project)

    def test_call_translation(self):
        program = from_python_source("d = distance(P[i], C[j])\n")
        assert isinstance(program.statements[0].value, ast.Call)

    def test_docstring_is_ignored(self):
        program = from_python_source('def f(V):\n    """doc"""\n    for v in V:\n        s += v\n')
        assert len(program.statements) == 1


class TestRejections:
    def test_return_value_rejected(self):
        with pytest.raises(FrontendError):
            from_python_source("def f(x):\n    return x + 1\n")

    def test_comprehension_rejected(self):
        with pytest.raises(FrontendError):
            from_python_source("y = [x for x in V]\n")

    def test_chained_comparison_rejected(self):
        with pytest.raises(FrontendError):
            from_python_source("b = 1 < x < 10\n")

    def test_chained_assignment_rejected(self):
        with pytest.raises(FrontendError):
            from_python_source("a = b = 1\n")

    def test_for_else_rejected(self):
        with pytest.raises(FrontendError):
            from_python_source("for x in V:\n    s += x\nelse:\n    s = 0\n")


class TestDiagnostics:
    """Rejected constructs carry the offending 1-based source line number."""

    def _line_of(self, source: str) -> FrontendError:
        with pytest.raises(FrontendError) as excinfo:
            parse_python_source(source)
        return excinfo.value

    def test_break_carries_line_number(self):
        error = self._line_of(
            "def f(V):\n"
            "    total: float = 0.0\n"
            "    for v in V:\n"
            "        if v > 10:\n"
            "            break\n"
        )
        assert error.line == 5
        assert "break" in str(error)
        assert "line 5" in str(error)

    def test_continue_carries_line_number(self):
        error = self._line_of("def f(V):\n    for v in V:\n        continue\n")
        assert error.line == 3
        assert "continue" in str(error)

    def test_comprehension_carries_line_number(self):
        error = self._line_of("def f(V):\n    y = [x for x in V]\n")
        assert error.line == 2
        assert "comprehension" in str(error)

    def test_nested_def_carries_line_number(self):
        error = self._line_of(
            "def f(V):\n    total: float = 0.0\n    def helper(x):\n        return x\n"
        )
        assert error.line == 3
        assert "nested function" in str(error)

    def test_mid_function_return_carries_line_number(self):
        error = self._line_of(
            "def f(x):\n    if x > 0:\n        return x\n    y = 1\n"
        )
        assert error.line == 3
        assert "final statement" in str(error)

    def test_return_of_expression_is_still_rejected(self):
        error = self._line_of("def f(x):\n    y = x + 1\n    return y + 1\n")
        assert error.line == 3
        assert "variable name" in str(error)


class TestFunctionSpec:
    """Tail returns and signature facts surface through parse_python_source."""

    def test_tail_return_of_a_name(self):
        spec = parse_python_source(
            "def f(V):\n    total: float = 0.0\n    for v in V:\n        total += v\n    return total\n"
        )
        assert spec.name == "f"
        assert spec.parameters == ("V",)
        assert spec.returns == ("total",)
        assert spec.returns_tuple is False
        # The return is not part of the converted program.
        assert len(spec.program.statements) == 2

    def test_tail_return_of_a_tuple(self):
        spec = parse_python_source(
            "def f(V):\n    a: float = 0.0\n    b: float = 0.0\n    return a, b\n"
        )
        assert spec.returns == ("a", "b")
        assert spec.returns_tuple is True

    def test_no_return(self):
        spec = parse_python_source("def f(V):\n    total: float = 0.0\n")
        assert spec.returns is None

    def test_star_args_rejected(self):
        with pytest.raises(FrontendError):
            parse_python_source("def f(*args):\n    s: float = 0.0\n")


class TestEndToEnd:
    def test_converted_function_matches_python_semantics(self):
        def histogram(P, R):
            for p in P:
                R[p["red"]] += 1

        # The frontend cannot see dict-style access; use attribute access via
        # a small record type instead.
        def conditional_sum(V):
            total: float = 0.0
            for v in V:
                if v < 100:
                    total += v

        program = from_python_function(conditional_sum)
        state = interpret_program(program, {"V": [10.0, 200.0, 30.0]})
        assert state["total"] == 40.0

    def test_converted_program_runs_through_diablo(self, diablo):
        def sum_all(V):
            total: float = 0.0
            for v in V:
                total += v

        result = diablo.run(from_python_function(sum_all), V=[1.0, 2.0, 3.0])
        assert result["total"] == 6.0
