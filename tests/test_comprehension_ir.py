"""Tests for the comprehension IR: terms, patterns, substitution, renaming."""

from repro.comprehension import ir


def simple_comprehension():
    # { v | (i, v) <- V, i == 3 }
    return ir.Comprehension(
        ir.CVar("v"),
        (
            ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
            ir.Condition(ir.CBinOp("==", ir.CVar("i"), ir.CConst(3))),
        ),
    )


class TestPatterns:
    def test_pvar_variables(self):
        assert ir.PVar("x").variables() == ("x",)

    def test_ptuple_variables_in_order(self):
        pattern = ir.PTuple((ir.PVar("a"), ir.PTuple((ir.PVar("b"), ir.PVar("c")))))
        assert pattern.variables() == ("a", "b", "c")

    def test_wildcard_binds_nothing(self):
        assert ir.PWildcard().variables() == ()

    def test_pattern_from_names(self):
        assert ir.pattern_from_names("x") == ir.PVar("x")
        assert isinstance(ir.pattern_from_names("x", "y"), ir.PTuple)

    def test_pattern_to_term(self):
        pattern = ir.PTuple((ir.PVar("a"), ir.PVar("b")))
        assert ir.pattern_to_term(pattern) == ir.CTuple((ir.CVar("a"), ir.CVar("b")))


class TestFreeVariables:
    def test_simple_term(self):
        term = ir.CBinOp("+", ir.CVar("a"), ir.CVar("b"))
        assert ir.free_variables(term) == {"a", "b"}

    def test_comprehension_binders_are_not_free(self):
        comp = simple_comprehension()
        assert ir.free_variables(comp) == {"V"}

    def test_group_by_key_variables_count_as_uses(self):
        comp = ir.Comprehension(
            ir.CVar("k"),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.GroupBy(ir.PVar("k"), ir.CVar("i")),
            ),
        )
        assert ir.free_variables(comp) == {"V"}

    def test_aggregate_and_merge(self):
        term = ir.Merge(ir.CVar("A"), ir.Aggregate("+", ir.CVar("b")))
        assert ir.free_variables(term) == {"A", "b"}


class TestSubstitution:
    def test_substitute_variable(self):
        term = ir.CBinOp("*", ir.CVar("x"), ir.CConst(2))
        replaced = ir.substitute_term(term, {"x": ir.CConst(21)})
        assert replaced == ir.CBinOp("*", ir.CConst(21), ir.CConst(2))

    def test_substitution_respects_binders(self):
        comp = simple_comprehension()
        # 'v' is bound inside; substituting it must not change the head.
        replaced = ir.substitute_term(comp, {"v": ir.CConst(0)})
        assert replaced.head == ir.CVar("v")

    def test_substitution_changes_free_domain(self):
        comp = simple_comprehension()
        replaced = ir.substitute_term(comp, {"V": ir.CVar("W")})
        assert replaced.qualifiers[0].domain == ir.CVar("W")

    def test_substitute_inside_merge_with(self):
        term = ir.MergeWith("+", ir.CVar("A"), ir.CVar("delta"))
        replaced = ir.substitute_term(term, {"delta": ir.CVar("d2")})
        assert replaced.right == ir.CVar("d2")

    def test_substitute_in_range_and_inrange(self):
        term = ir.InRange(ir.CVar("i"), ir.CConst(0), ir.CVar("n"))
        replaced = ir.substitute_term(term, {"n": ir.CConst(9)})
        assert replaced.upper == ir.CConst(9)


class TestRenaming:
    def test_rename_bound_variables_is_alpha_equivalent(self):
        comp = simple_comprehension()
        fresh = ir.NameGenerator()
        renamed = ir.rename_bound_variables(comp, fresh)
        # The head variable must follow the renamed generator pattern.
        generator = renamed.qualifiers[0]
        assert renamed.head == ir.CVar(generator.pattern.elements[1].name)
        assert ir.free_variables(renamed) == {"V"}

    def test_rename_materializes_group_by_key(self):
        comp = ir.Comprehension(
            ir.CVar("k"),
            (
                ir.LetBinding(ir.PVar("k"), ir.CVar("x")),
                ir.GroupBy(ir.PVar("k"), None),
            ),
        )
        renamed = ir.rename_bound_variables(comp, ir.NameGenerator())
        group_by = renamed.qualifiers[1]
        assert group_by.key is not None

    def test_fresh_names_are_unique(self):
        fresh = ir.NameGenerator()
        names = {fresh.fresh("x") for _ in range(100)}
        assert len(names) == 100


class TestHelpers:
    def test_singleton(self):
        assert ir.singleton(ir.CConst(1)).is_singleton()

    def test_conjuncts(self):
        term = ir.CBinOp("&&", ir.CBinOp("&&", ir.CVar("a"), ir.CVar("b")), ir.CVar("c"))
        assert len(ir.conjuncts(term)) == 3

    def test_equality_helper(self):
        condition = ir.equality(ir.CVar("a"), ir.CVar("b"))
        assert isinstance(condition.term, ir.CBinOp)
        assert condition.term.op == "=="

    def test_qualifier_variables(self):
        comp = simple_comprehension()
        assert ir.qualifier_variables(comp.qualifiers) == ["i", "v"]

    def test_walk_terms_descends_into_comprehensions(self):
        comp = simple_comprehension()
        names = {t.name for t in ir.walk_terms(comp) if isinstance(t, ir.CVar)}
        assert "V" in names and "i" in names

    def test_str_representations(self):
        comp = simple_comprehension()
        text = str(comp)
        assert "<-" in text and "==" in text
        assert str(ir.Aggregate("+", ir.CVar("v"))) == "+/v"
        assert "<|" in str(ir.Merge(ir.CVar("A"), ir.CVar("B")))
        assert "range" in str(ir.RangeTerm(ir.CConst(0), ir.CConst(9)))
