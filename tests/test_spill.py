"""Unit tests for the out-of-core shuffle layer (repro.runtime.spill).

The differential coverage (every wide operator and every Figure 3 workload
forced through the spill path under all three executors) lives in
``tests/test_executor_equivalence.py``; this file tests the spill machinery
itself: run framing, writer budgets, the external sort merge, store
lifecycle/cleanup, and the configuration plumbing.
"""

from __future__ import annotations

import os

import pytest

from repro.api.config import DiabloConfig
from repro.runtime import spill
from repro.runtime.context import DistributedContext


def _payloads_of(writer: spill.BucketWriter) -> list[spill.BucketPayload]:
    return writer.finish()


class TestRunFraming:
    def test_append_and_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "bucket.spill")
        first = spill.append_run(path, [("a", 1), ("b", 2)])
        second = spill.append_run(path, [("c", 3)])
        assert first.offset == 0 and second.offset == first.length
        assert first.records == 2 and second.records == 1
        assert spill.read_run(first) == [("a", 1), ("b", 2)]
        assert spill.read_run(second) == [("c", 3)]

    def test_runs_are_independent_frames(self, tmp_path):
        path = str(tmp_path / "bucket.spill")
        runs = [spill.append_run(path, [i]) for i in range(5)]
        # Reading out of order works: descriptors are self-contained.
        assert [spill.read_run(run)[0] for run in reversed(runs)] == [4, 3, 2, 1, 0]


class TestBucketWriter:
    def test_no_spill_spec_keeps_everything_in_memory(self, tmp_path):
        writer = spill.BucketWriter(2, None)
        for i in range(100):
            writer.add(i % 2, i)
        payloads = _payloads_of(writer)
        assert writer.spill_files == 0 and writer.spilled_bytes == 0
        assert payloads[0].runs == () and len(payloads[0].records) == 50

    def test_over_budget_flushes_runs_and_remainder_stays_in_memory(self, tmp_path):
        spec = spill.SpillSpec(str(tmp_path), 1)
        writer = spill.BucketWriter(2, spec, task_tag="m0")
        for i in range(10):
            writer.add(i % 2, i)
        payloads = _payloads_of(writer)
        assert writer.spill_files == 2
        assert writer.spilled_bytes > 0
        assert writer.peak_memory > 0
        # Streaming runs-then-remainder reproduces insertion order per bucket.
        assert list(spill.iter_payload(payloads[0])) == [0, 2, 4, 6, 8]
        assert list(spill.iter_payload(payloads[1])) == [1, 3, 5, 7, 9]

    def test_iter_merged_preserves_map_task_order(self, tmp_path):
        spec = spill.SpillSpec(str(tmp_path), 1)
        writers = []
        for task in range(2):
            writer = spill.BucketWriter(1, spec, task_tag=f"m{task}")
            for i in range(3):
                writer.add(0, (task, i))
            writers.append(writer)
        merged = [w.finish()[0] for w in writers]
        assert list(spill.iter_merged(merged)) == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]

    def test_sorted_runs_merge_like_a_stable_sort(self, tmp_path):
        records = [(i * 7 + 3) % 10 for i in range(50)]  # lots of duplicate keys
        spec = spill.SpillSpec(str(tmp_path), 1)
        writer = spill.BucketWriter(1, spec, sort_spec=(lambda x: x, True))
        decorated = [(value, position) for position, value in enumerate(records)]
        for record in decorated:
            writer.add(0, record)
        merged = list(
            spill.merge_sorted_payloads(writer.finish(), key=lambda r: r[0], ascending=True)
        )
        assert merged == sorted(decorated, key=lambda r: r[0])  # stable: ties by position

    def test_descending_merge(self, tmp_path):
        spec = spill.SpillSpec(str(tmp_path), 1)
        writer = spill.BucketWriter(1, spec, sort_spec=(lambda x: x, False))
        for value in [5, 1, 9, 3, 9, 0]:
            writer.add(0, value)
        merged = list(
            spill.merge_sorted_payloads(writer.finish(), key=lambda x: x, ascending=False)
        )
        assert merged == [9, 9, 5, 3, 1, 0]


class TestShuffleStore:
    def test_disabled_store_hands_out_nothing(self, tmp_path):
        store = spill.ShuffleStore(str(tmp_path), None)
        assert not store.enabled
        assert store.begin_shuffle() is None
        store.end_shuffle(None)  # no-op
        assert store.root is None

    def test_shuffle_dirs_created_and_removed(self, tmp_path):
        store = spill.ShuffleStore(str(tmp_path), 1024)
        spec = store.begin_shuffle()
        assert os.path.isdir(spec.directory)
        assert store.active_shuffle_dirs() == [spec.directory]
        store.end_shuffle(spec)
        assert store.active_shuffle_dirs() == []
        store.close()
        assert store.root is None

    def test_close_removes_root_and_store_stays_usable(self, tmp_path):
        store = spill.ShuffleStore(str(tmp_path), 1024)
        first = store.begin_shuffle()
        root = store.root
        store.close()
        assert not os.path.exists(root)
        again = store.begin_shuffle()  # root recreated lazily
        assert os.path.isdir(again.directory)
        assert first.directory != again.directory
        store.close()

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            spill.ShuffleStore(None, 0)
        with pytest.raises(ValueError):
            spill.ShuffleStore(None, -5)


class TestContextPlumbing:
    def test_context_spill_knobs_reach_the_store(self, tmp_path):
        with DistributedContext(
            num_partitions=2, spill_threshold_bytes=128, spill_dir=str(tmp_path)
        ) as ctx:
            assert ctx.shuffle_store.enabled
            assert ctx.shuffle_store.threshold_bytes == 128
            ctx.parallelize([(i % 3, i) for i in range(50)]).group_by_key().collect()
            # The lazily-created root lives under the requested directory.
            assert ctx.shuffle_store.root.startswith(str(tmp_path))
            assert ctx.metrics.spilled_bytes > 0

    def test_env_var_supplies_the_default_threshold(self, tmp_path, monkeypatch):
        monkeypatch.setenv("DIABLO_SPILL_THRESHOLD_BYTES", "64")
        monkeypatch.setenv("DIABLO_SPILL_DIR", str(tmp_path))
        with DistributedContext(num_partitions=2) as ctx:
            assert ctx.spill_threshold_bytes == 64
            ctx.parallelize([(i % 3, i) for i in range(50)]).group_by_key().collect()
            assert ctx.metrics.spilled_bytes > 0
            assert ctx.shuffle_store.root.startswith(str(tmp_path))

    def test_env_var_zero_disables_spilling(self, monkeypatch):
        # "=0" is the natural way to switch spilling off in an environment
        # that otherwise sets the variable; it must not crash construction.
        monkeypatch.setenv("DIABLO_SPILL_THRESHOLD_BYTES", "0")
        with DistributedContext(num_partitions=2) as ctx:
            assert ctx.spill_threshold_bytes is None
            assert not ctx.shuffle_store.enabled

    def test_env_var_garbage_reports_a_clear_error(self, monkeypatch):
        monkeypatch.setenv("DIABLO_SPILL_THRESHOLD_BYTES", "64k")
        with pytest.raises(ValueError, match="DIABLO_SPILL_THRESHOLD_BYTES"):
            DistributedContext(num_partitions=2)

    def test_graceful_shutdown_leaves_the_spill_root_for_inflight_work(self, tmp_path):
        # shutdown(cancel_pending=False) is the jit-eviction path: another
        # thread may still be mid-shuffle on this context, so its active
        # spill root must survive (the GC finalizer reclaims it later).
        ctx = DistributedContext(
            num_partitions=2, spill_threshold_bytes=1, spill_dir=str(tmp_path)
        )
        ctx.parallelize([(i % 3, i) for i in range(30)]).group_by_key().collect()
        root = ctx.shuffle_store.root
        assert root is not None
        ctx.shutdown(cancel_pending=False)
        assert os.path.exists(root)
        ctx.shutdown()  # a full shutdown still removes it
        assert not os.path.exists(root)

    def test_long_runs_stream_in_chunk_frames(self, tmp_path):
        # One run larger than RUN_CHUNK_RECORDS decodes chunk by chunk.
        path = str(tmp_path / "big.spill")
        records = list(range(spill.RUN_CHUNK_RECORDS * 2 + 17))
        run = spill.append_run(path, records)
        assert run.records == len(records)
        assert list(spill.stream_run(run)) == records

    def test_explicit_argument_beats_the_env_var(self, monkeypatch):
        monkeypatch.setenv("DIABLO_SPILL_THRESHOLD_BYTES", "64")
        with DistributedContext(num_partitions=2, spill_threshold_bytes=1 << 30) as ctx:
            assert ctx.spill_threshold_bytes == 1 << 30
            ctx.parallelize([(i % 3, i) for i in range(50)]).group_by_key().collect()
            assert ctx.metrics.spilled_bytes == 0  # far under budget

    def test_config_carries_the_spill_knobs(self, tmp_path):
        config = DiabloConfig(spill_threshold_bytes=256, spill_dir=str(tmp_path))
        context = config.make_context()
        try:
            assert context.spill_threshold_bytes == 256
            assert context.shuffle_store.base_dir == str(tmp_path)
        finally:
            context.shutdown()

    def test_config_rejects_non_positive_threshold(self):
        with pytest.raises(ValueError):
            DiabloConfig(spill_threshold_bytes=0)

    def test_runtime_key_distinguishes_spill_settings(self):
        assert (
            DiabloConfig().runtime_key()
            != DiabloConfig(spill_threshold_bytes=1024).runtime_key()
        )

    def test_explain_metrics_reports_spill_counters(self):
        from repro.algebra.explain import explain_metrics

        with DistributedContext(num_partitions=2, spill_threshold_bytes=1) as ctx:
            ctx.parallelize([(i % 3, i) for i in range(30)]).group_by_key().collect()
            report = "\n".join(explain_metrics(ctx.metrics))
        assert "spill:" in report and "peak shuffle memory" in report
