"""Lifecycle and failure-detection tests for ``executor_mode="cluster"``.

These spawn real worker subprocesses through :class:`LocalCluster` (small
clusters, small data -- the full Figure 3 differential suite lives in
``test_cluster_equivalence.py`` behind ``DIABLO_CLUSTER_TESTS=1``).
"""

from __future__ import annotations

import socket
import sys
import threading
import time

import pytest

from repro.api import DiabloConfig
from repro.errors import ExecutionError, WorkerLostError
from repro.runtime.cluster import ClusterContext, LocalCluster, protocol
from repro.runtime.context import DistributedContext


def _key_mod5(x):
    return (x % 5, x)


def _add(a, b):
    return a + b


@pytest.fixture()
def cluster():
    ctx = ClusterContext(num_partitions=4, cluster_workers=2)
    yield ctx
    ctx.shutdown()


class TestLifecycle:
    def test_registration(self, cluster):
        workers = cluster._workers
        assert len(workers) == 2
        assert cluster.executor == "cluster"
        assert len({w.serve_address for w in workers}) == 2, "each worker serves its own port"
        assert all(w.pid > 0 for w in workers)
        assert all(w.lost is None for w in workers)

    def test_simple_pipeline(self, cluster):
        out = cluster.parallelize(range(100)).map(_key_mod5).reduce_by_key(_add).collect()
        expected = {k: sum(x for x in range(100) if x % 5 == k) for k in range(5)}
        assert dict(out) == expected
        snapshot = cluster.metrics.snapshot()
        assert snapshot["cluster_fallbacks"] == 0
        assert snapshot["driver_payload_bytes"] == 0
        assert snapshot["worker_payload_fetches"] + snapshot["worker_payload_local_reads"] > 0

    def test_resident_partitions_reused_across_stages(self, cluster):
        source = cluster.parallelize(range(200)).materialize()
        first = sorted(source.map(_key_mod5).reduce_by_key(_add).collect())
        assert cluster.metrics.resident_partition_reuses == 0
        second = sorted(source.map(_key_mod5).reduce_by_key(_add).collect())
        assert first == second
        # The second pass scans the same materialized partitions: the driver
        # sends store references, not the records again.
        assert cluster.metrics.resident_partition_reuses > 0

    def test_clean_shutdown_exits_workers(self):
        ctx = ClusterContext(num_partitions=4, cluster_workers=2)
        assert sorted(ctx.parallelize(range(20)).map(_key_mod5).distinct().collect())
        local = ctx._local_cluster
        processes = [p for p in local.processes]
        ctx.shutdown()
        assert all(p is not None and p.returncode == 0 for p in processes), (
            "workers must exit voluntarily (code 0) on a clean shutdown, got "
            f"{[p and p.returncode for p in processes]}"
        )
        assert local.poll() == [None, None], "close() clears the process table"

    def test_double_shutdown_is_idempotent(self, cluster):
        cluster.shutdown()
        cluster.shutdown()  # must not raise or hang

    def test_context_manager_shuts_down(self):
        with ClusterContext(num_partitions=2, cluster_workers=1) as ctx:
            assert sorted(ctx.parallelize(range(10)).collect()) == list(range(10))
        assert ctx._workers is None

    def test_tasks_after_shutdown_fail_clearly(self, cluster):
        cluster.shutdown()
        with pytest.raises(ExecutionError, match="shut down"):
            cluster.parallelize(range(10)).map(_key_mod5).collect()

    def test_registration_timeout_raises(self):
        # Nothing will ever connect to this address.
        with pytest.raises(ExecutionError, match="registration timed out"):
            ClusterContext(
                num_partitions=2,
                cluster_workers=1,
                cluster_address="127.0.0.1:0",
                register_timeout=1.0,
            )


class TestConfigPlumbing:
    def test_from_config_builds_a_cluster_context(self):
        config = DiabloConfig(executor_mode="cluster", cluster_workers=1, num_partitions=2)
        ctx = DistributedContext.from_config(config)
        try:
            assert isinstance(ctx, ClusterContext)
            assert ctx.cluster_workers == 1
            assert sorted(ctx.parallelize(range(6)).collect()) == list(range(6))
        finally:
            ctx.shutdown()

    def test_cluster_mode_validates(self):
        assert DiabloConfig(executor_mode="cluster").executor_mode == "cluster"
        with pytest.raises(ValueError, match="unknown executor_mode"):
            DiabloConfig(executor_mode="clusterr")
        with pytest.raises(ValueError, match="cluster_workers"):
            DiabloConfig(cluster_workers=0)

    def test_runtime_key_distinguishes_cluster_settings(self):
        base = DiabloConfig(executor_mode="cluster")
        assert base.runtime_key() != base.replace(cluster_workers=5).runtime_key()
        assert base.runtime_key() != base.replace(cluster_address="h:1").runtime_key()


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _start_stalling_worker(address: str) -> threading.Thread:
    """A fake worker: registers correctly, then never answers anything."""

    def run() -> None:
        deadline = time.monotonic() + 10.0
        sock = None
        while time.monotonic() < deadline:
            try:
                sock = socket.create_connection(protocol.parse_address(address), timeout=1.0)
                break
            except OSError:
                time.sleep(0.05)
        assert sock is not None
        sock.settimeout(None)  # stall forever, don't time out ourselves
        protocol.send_message(
            sock,
            protocol.REGISTER,
            {
                "pid": 1,
                "serve_address": "127.0.0.1:1",
                "protocol_version": protocol.PROTOCOL_VERSION,
                "python": tuple(sys.version_info[:3]),
            },
        )
        protocol.recv_message(sock)  # REGISTERED
        try:
            while True:
                protocol.recv_message(sock)  # swallow requests, never reply
        except Exception:
            pass

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


class TestFailureDetection:
    def test_killed_worker_raises_worker_lost_promptly(self):
        ctx = ClusterContext(num_partitions=4, cluster_workers=2, task_timeout=30.0)
        try:
            assert len(ctx.parallelize(range(40)).map(_key_mod5).reduce_by_key(_add).collect()) == 5
            ctx._local_cluster.kill(0)
            started = time.monotonic()
            with pytest.raises(WorkerLostError, match="worker"):
                ctx.parallelize(range(40)).map(_key_mod5).reduce_by_key(_add).collect()
            assert time.monotonic() - started < 20.0, "detection must not wait for the full timeout"
        finally:
            ctx.shutdown()

    def test_unresponsive_worker_times_out_as_worker_lost(self):
        port = _free_port()
        address = f"127.0.0.1:{port}"
        _start_stalling_worker(address)
        ctx = ClusterContext(
            num_partitions=2,
            cluster_workers=1,
            cluster_address=address,
            task_timeout=1.5,
            heartbeat_interval=60.0,
        )
        try:
            started = time.monotonic()
            with pytest.raises(WorkerLostError, match="respond"):
                ctx.parallelize(range(10)).map(_key_mod5).distinct().collect()
            elapsed = time.monotonic() - started
            assert elapsed < 15.0, f"timed out in {elapsed:.1f}s, expected ~task_timeout"
        finally:
            ctx.shutdown()

    def test_lost_worker_fails_queued_requests_too(self):
        ctx = ClusterContext(num_partitions=4, cluster_workers=2)
        try:
            handle = ctx._workers[0]
            handle._mark_lost_probe = None  # silence linters about unused vars
            error = WorkerLostError("test")
            handle.lost = error
            future = handle.submit(b"ignored", 1.0)
            with pytest.raises(WorkerLostError):
                future.result(timeout=1.0)
        finally:
            ctx.shutdown()


class TestWorkerErrors:
    def test_task_exception_surfaces_as_execution_error(self, cluster):
        def boom(x):
            raise ZeroDivisionError("cluster boom")

        with pytest.raises(ExecutionError, match="task"):
            cluster.parallelize(range(10)).map(boom).collect()
        # The cluster survives a task failure (unlike a lost worker).
        assert sorted(cluster.parallelize(range(5)).collect()) == list(range(5))


class TestLocalCluster:
    def test_logs_are_written_per_worker(self, tmp_path):
        ctx = ClusterContext(num_partitions=2, cluster_workers=2)
        try:
            log_dir = ctx._local_cluster.log_dir
            import os

            names = sorted(os.listdir(log_dir))
            assert names == ["worker-0.log", "worker-1.log"]
        finally:
            ctx.shutdown()

    def test_close_is_idempotent(self):
        port = _free_port()
        listener = socket.create_server(("127.0.0.1", port))
        try:
            local = LocalCluster(1, f"127.0.0.1:{port}")
            local.close()
            local.close()
        finally:
            listener.close()
