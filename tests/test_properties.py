"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comprehension import ir
from repro.comprehension.monoids import MonoidRegistry
from repro.comprehension.normalize import normalize
from repro.evaluation.harness import diablo_for
from repro.loop_lang.parser import parse_program
from repro.loop_lang.pretty import pretty_program
from repro.programs import get_program
from repro.runtime.context import DistributedContext

COMMON_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

keys = st.integers(min_value=0, max_value=20)
values = st.integers(min_value=-100, max_value=100)
kv_dicts = st.dictionaries(keys, values, max_size=25)


class TestRuntimeProperties:
    @COMMON_SETTINGS
    @given(data=st.lists(values, max_size=50), partitions=st.integers(min_value=1, max_value=7))
    def test_parallelize_collect_round_trip(self, data, partitions):
        context = DistributedContext(num_partitions=partitions)
        assert sorted(context.parallelize(data).collect()) == sorted(data)

    @COMMON_SETTINGS
    @given(data=st.lists(st.tuples(keys, values), max_size=50))
    def test_reduce_by_key_matches_python_grouping(self, data):
        context = DistributedContext(num_partitions=3)
        expected = {}
        for key, value in data:
            expected[key] = expected.get(key, 0) + value
        result = context.parallelize(data).reduce_by_key(lambda a, b: a + b).collect_as_map()
        assert result == expected

    @COMMON_SETTINGS
    @given(left=kv_dicts, right=kv_dicts)
    def test_merge_semantics(self, left, right):
        """X ⊳ Y = Y entries win; all other X entries are preserved."""
        context = DistributedContext(num_partitions=3)
        merged = (
            context.parallelize_pairs(left).merge(context.parallelize_pairs(right)).collect_as_map()
        )
        assert merged == {**left, **right}

    @COMMON_SETTINGS
    @given(left=kv_dicts, right=kv_dicts)
    def test_merge_with_adds_overlapping_entries(self, left, right):
        context = DistributedContext(num_partitions=3)
        merged = (
            context.parallelize_pairs(left)
            .merge_with(context.parallelize_pairs(right), lambda a, b: a + b)
            .collect_as_map()
        )
        expected = dict(left)
        for key, value in right.items():
            expected[key] = expected.get(key, 0) + value
        assert merged == expected

    @COMMON_SETTINGS
    @given(left=kv_dicts, right=kv_dicts)
    def test_join_matches_dict_semantics(self, left, right):
        context = DistributedContext(num_partitions=3)
        joined = context.parallelize_pairs(left).join(context.parallelize_pairs(right)).collect_as_map()
        expected = {key: (left[key], right[key]) for key in left.keys() & right.keys()}
        assert joined == expected


class TestMonoidProperties:
    @COMMON_SETTINGS
    @given(values=st.lists(values, max_size=30), symbol=st.sampled_from(["+", "*", "min", "max"]))
    def test_reduce_is_order_insensitive(self, values, symbol):
        monoid = MonoidRegistry().get(symbol)
        assert monoid.reduce(values) == monoid.reduce(list(reversed(values)))

    @COMMON_SETTINGS
    @given(a=values, b=values, c=values, symbol=st.sampled_from(["+", "*", "min", "max"]))
    def test_associativity_and_commutativity(self, a, b, c, symbol):
        monoid = MonoidRegistry().get(symbol)
        assert monoid.combine(a, b) == monoid.combine(b, a)
        assert monoid.combine(monoid.combine(a, b), c) == monoid.combine(a, monoid.combine(b, c))


class TestTranslationProperties:
    @COMMON_SETTINGS
    @given(data=st.lists(st.floats(min_value=-1000, max_value=1000, allow_nan=False), max_size=40))
    def test_sum_program_soundness(self, data):
        spec = get_program("sum")
        diablo = diablo_for(spec)
        distributed = diablo.compile(spec.source).run(V=list(data))
        sequential = diablo.interpret(spec.source, {"V": list(data)})
        assert abs(distributed["s"] - sequential["s"]) < 1e-6

    @COMMON_SETTINGS
    @given(words=st.lists(st.sampled_from(["aa", "bb", "cc", "dd"]), max_size=40))
    def test_word_count_program_soundness(self, words):
        spec = get_program("word_count")
        diablo = diablo_for(spec)
        distributed = diablo.compile(spec.source).run(words=list(words))
        sequential = diablo.interpret(spec.source, {"words": list(words)})
        assert distributed.array("C") == sequential["C"]

    @COMMON_SETTINGS
    @given(entries=st.dictionaries(st.integers(0, 10), values, min_size=0, max_size=20))
    def test_vector_increment_program_soundness(self, entries):
        source = "for i = 0, 10 do V[i] += W[i];"
        diablo = diablo_for(get_program("sum"))
        distributed = diablo.compile(source).run(V={}, W=dict(entries))
        sequential = diablo.interpret(source, {"V": {}, "W": dict(entries)})
        # Sparse arrays treat a missing entry as zero (Section 3.4): the
        # sequential loop writes explicit zeros for indexes missing from W,
        # the translated program leaves them implicit.  Compare as functions.
        left, right = distributed.array("V"), sequential["V"]
        for key in range(0, 11):
            assert left.get(key, 0) == right.get(key, 0)

    @COMMON_SETTINGS
    @given(st.data())
    def test_pretty_parse_round_trip_on_benchmarks(self, data):
        name = data.draw(
            st.sampled_from(sorted(__import__("repro.programs", fromlist=["PROGRAMS"]).PROGRAMS))
        )
        spec = get_program(name)
        program = parse_program(spec.source)
        assert parse_program(pretty_program(program)) == program


class TestNormalizationProperties:
    @COMMON_SETTINGS
    @given(constant=values, size=st.integers(min_value=0, max_value=10))
    def test_normalize_is_idempotent_on_generated_terms(self, constant, size):
        qualifiers = [
            ir.Generator(
                ir.PTuple((ir.PVar(f"i{n}"), ir.PVar(f"v{n}"))),
                ir.singleton(ir.CTuple((ir.CConst(n), ir.CConst(constant)))),
            )
            for n in range(size % 3 + 1)
        ]
        comp = ir.Comprehension(ir.CConst(constant), tuple(qualifiers))
        once = normalize(comp)
        assert normalize(once) == once
