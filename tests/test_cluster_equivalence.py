"""The cluster-mode differential oracle: every Figure 3 workload, bit-identical.

Each configuration (spill threshold 1 and default, adaptive on and off, plus
a ``columnar="auto"`` leg at the harshest spill setting) gets one shared
multi-worker :class:`ClusterContext`; every Figure 3 program runs under it
and must produce

* the same outputs as the sequential loop-language interpreter (the
  correctness oracle, via ``assert_same_outputs``), and
* **bit-identical** outputs to the translated plan under the sequential
  executor with the same spill/adaptive settings (``==`` on the raw output
  dicts -- no tolerance).

Alongside correctness, the acceptance criterion of the cluster backend is
asserted per program: shuffle payloads move worker-to-worker (fetches or
local reads happen whenever the program shuffles) and **zero** payload bytes
pass through the driver.

Gated behind ``DIABLO_CLUSTER_TESTS=1`` (the CI ``cluster-equivalence`` job;
a plain ``pytest tests`` run skips it) because it spawns worker subprocesses
per configuration.  ``DIABLO_CLUSTER_WORKERS`` sets the cluster size
(default 3) and ``BENCH_SIZE_SCALE`` scales the workload sizes (the nightly
stress job uses 4 workers at 4x data with spill threshold 1).
"""

from __future__ import annotations

import functools
import os

import pytest

from test_executor_equivalence import _Outputs
from test_soundness_programs import assert_same_outputs

from repro.evaluation.harness import diablo_for, translated_outputs
from repro.programs import get_program, table2_program_names
from repro.runtime.cluster import ClusterContext
from repro.runtime.context import DistributedContext
from repro.workloads import generators, workload_for_program

pytestmark = pytest.mark.skipif(
    os.environ.get("DIABLO_CLUSTER_TESTS") != "1",
    reason="cluster differential suite is opt-in: set DIABLO_CLUSTER_TESTS=1",
)

_SCALE = int(os.environ.get("BENCH_SIZE_SCALE", "1"))
_WORKERS = int(os.environ.get("DIABLO_CLUSTER_WORKERS", "3"))

#: Base sizes small enough for the tree-walking interpreter oracle.
SIZES = {
    "conditional_sum": 300,
    "equal": 200,
    "string_match": 200,
    "word_count": 400,
    "histogram": 200,
    "linear_regression": 200,
    "group_by": 300,
    "matrix_addition": 6,
    "matrix_multiplication": 5,
    "pagerank": 40,
    "kmeans": 220,
    "matrix_factorization": 6,
}

#: (spill_threshold_bytes, adaptive, columnar) -- the full differential grid.
#: The four record-path legs cover spill x adaptive; the fifth runs the
#: default columnar="auto" mode under the harshest spill setting, proving the
#: batch kernels ship to workers and stay bit-identical there too.
CONFIGS = [
    (None, True, False),
    (None, False, False),
    (1, True, False),
    (1, False, False),
    (1, True, "auto"),
]


def _size(name: str) -> int:
    return SIZES[name] * _SCALE


def workload(name: str) -> dict:
    inputs = workload_for_program(name, _size(name))
    if name == "matrix_factorization":
        # Dense R so the interpreter's implicit-zero reads coincide with the
        # translator's sparse semantics (see test_executor_equivalence).
        inputs["R"] = generators.random_matrix(_size(name), _size(name), seed=3)
    return inputs


@functools.lru_cache(maxsize=None)
def interpreter_outputs(name: str) -> dict:
    spec = get_program(name)
    return diablo_for(spec).interpret(spec.source, dict(workload(name)))


@functools.lru_cache(maxsize=None)
def sequential_outputs(
    name: str, spill: int | None, adaptive: bool, columnar: bool | str = False
) -> dict:
    """The translated plan under the sequential executor (bitwise reference)."""
    spec = get_program(name)
    with DistributedContext(
        num_partitions=4, spill_threshold_bytes=spill, adaptive=adaptive, columnar=columnar
    ) as context:
        result = diablo_for(spec, context).compile(spec.source).run(**workload(name))
        return translated_outputs(name, result)


@pytest.fixture(
    scope="module",
    params=CONFIGS,
    ids=lambda c: f"spill={c[0]}-adaptive={c[1]}-columnar={c[2]}",
)
def cluster(request):
    spill, adaptive, columnar = request.param
    context = ClusterContext(
        num_partitions=4,
        cluster_workers=_WORKERS,
        spill_threshold_bytes=spill,
        adaptive=adaptive,
        columnar=columnar,
    )
    context._equivalence_config = (spill, adaptive, columnar)
    yield context
    context.shutdown()


@pytest.mark.parametrize("name", table2_program_names())
def test_cluster_matches_interpreter_and_sequential(name, cluster):
    spec = get_program(name)
    before = cluster.metrics.snapshot()
    result = diablo_for(spec, cluster).compile(spec.source).run(**workload(name))
    outputs = translated_outputs(name, result)
    after = cluster.metrics.snapshot()

    # Correctness: interpreter oracle (tolerant) and sequential translated
    # run (bit-identical).
    assert_same_outputs(spec, _Outputs(outputs), interpreter_outputs(name))
    spill, adaptive, columnar = cluster._equivalence_config
    assert outputs == sequential_outputs(name, spill, adaptive, columnar), (
        f"{name}: cluster outputs are not bit-identical to the sequential executor"
    )
    if columnar:
        # The columnar leg's reference must itself equal the record path:
        # cluster == sequential(columnar) == sequential(record).
        assert sequential_outputs(name, spill, adaptive, columnar) == sequential_outputs(
            name, spill, adaptive, False
        ), f"{name}: columnar sequential reference diverged from the record path"

    # Acceptance criteria: reduce inputs never transit the driver, and any
    # shuffling program actually moved its payloads between workers.
    assert after["driver_payload_bytes"] == before["driver_payload_bytes"] == 0, (
        f"{name}: shuffle payload bytes passed through the driver"
    )
    assert after["cluster_fallbacks"] == before["cluster_fallbacks"], (
        f"{name}: some task batches fell back to the driver"
    )
    if after["shuffles"] > before["shuffles"]:
        moved = (after["worker_payload_fetches"] + after["worker_payload_local_reads"]) - (
            before["worker_payload_fetches"] + before["worker_payload_local_reads"]
        )
        assert moved > 0, f"{name}: shuffled but no worker read any payload"
