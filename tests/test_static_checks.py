"""Tests for the whole-pipeline static diagnostics engine.

Covers the diagnostic framework (stable codes, golden rendering, spans), the
type/shape inference pass, the plan linter, ``diablo.check`` end to end, the
``strict`` knob on configuration / ``@diablo.jit``, the frontend's
line-number contract, and the ``repro-lint`` CLI over the committed
known-bad fixture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.api as diablo
from repro.analysis.cli import main as lint_main
from repro.analysis.diagnostics import (
    CODES,
    DiagnosticReport,
    Severity,
    make_diagnostic,
)
from repro.analysis.plan_lint import lint_plan, lint_target
from repro.analysis.typecheck import check_types
from repro.api import Map, Vector
from repro.comprehension.monoids import MonoidRegistry
from repro.errors import SourceLocation, StaticCheckError
from repro.loop_lang import ast
from repro.loop_lang.python_frontend import FrontendError, parse_python_source
from repro.translate.target import VariableInfo
from repro.translate.translator import DiabloCompiler

FIXTURES = Path(__file__).parent / "fixtures"


def compile_source(source: str, **types: ast.Type):
    """Translate loop-language source with declared input types."""
    infos = {}
    for name, typ in types.items():
        kind = "array" if ast.is_array_type(typ) else (
            "collection" if ast.is_collection_type(typ) else "scalar"
        )
        infos[name] = VariableInfo(name, kind, typ, True)
    return DiabloCompiler(MonoidRegistry()).compile(source, input_types=infos)


# ---------------------------------------------------------------------------
# Diagnostic framework
# ---------------------------------------------------------------------------


class TestDiagnosticFramework:
    def test_code_registry_is_stable(self):
        # Released codes with their severities; appending is fine, changing
        # or removing any entry here is a breaking change.
        released = {
            "D001": Severity.ERROR, "D002": Severity.ERROR, "D003": Severity.ERROR,
            "D101": Severity.ERROR, "D102": Severity.ERROR, "D103": Severity.ERROR,
            "D104": Severity.ERROR,
            "D201": Severity.ERROR, "D202": Severity.ERROR,
            "D301": Severity.ERROR, "D302": Severity.ERROR, "D303": Severity.ERROR,
            "D304": Severity.ERROR,
            "D401": Severity.ERROR, "D402": Severity.ERROR, "D403": Severity.ERROR,
            "D404": Severity.INFO,
            "D501": Severity.WARNING, "D502": Severity.WARNING,
            "D503": Severity.WARNING, "D504": Severity.WARNING,
        }
        for code, severity in released.items():
            assert CODES[code][0] is severity, code

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            make_diagnostic("D999", "nope")

    def test_golden_rendering(self):
        diagnostic = make_diagnostic(
            "D201",
            "destination is not affine",
            hint="promote the scalar",
            location=SourceLocation(7, 3),
            statement="R[i*i] := V[i];",
        )
        assert diagnostic.render() == (
            "D201 error: line 7: destination is not affine\n"
            "    in: R[i*i] := V[i];\n"
            "    hint: promote the scalar"
        )

    def test_promote_only_touches_warnings(self):
        warning = make_diagnostic("D501", "product")
        info = make_diagnostic("D404", "unprobeable")
        assert warning.promote().severity is Severity.ERROR
        assert info.promote().severity is Severity.INFO

    def test_report_counts_and_render(self):
        report = DiagnosticReport(subject="demo")
        assert not report and not report.has_errors
        assert report.render() == "check of demo: no findings"
        report.append(make_diagnostic("D501", "product here"))
        assert report.warnings() and not report.has_errors
        strict = report.promote_warnings()
        assert strict.has_errors
        assert len(report.warnings()) == 1  # original untouched


# ---------------------------------------------------------------------------
# Restriction checker through the framework
# ---------------------------------------------------------------------------


class TestRestrictionDiagnostics:
    def test_while_in_for_has_code_and_span(self):
        report = diablo.check(
            "for i = 0, 9 do {\n  while (x < 3) x := x + 1;\n};"
        )
        (finding,) = report.errors()
        assert finding.code == "D102"
        assert finding.location is not None and finding.location.line == 2

    def test_scalar_temporary_hint_text(self):
        # Assigning a bare scalar inside a for-loop: the hint must carry the
        # paper's promote-to-array advice (Section 3.2).
        report = diablo.check("for i = 0, 9 do t := V[i] * 2;")
        codes = report.codes()
        assert "D201" in codes
        hint = next(d.hint for d in report if d.code == "D201")
        assert "promote the destination to an array" in hint

    def test_declaration_inside_for_is_d101(self):
        report = diablo.check(
            "for i = 0, 9 do {\n  var t: double = 0.0;\n  W[i] := t;\n};"
        )
        assert "D101" in report.codes()

    def test_reused_index_is_d104(self):
        report = diablo.check(
            "for i = 0, 9 do\n  for i = 0, 4 do\n    W[i] := 0.0;"
        )
        assert "D104" in report.codes()


# ---------------------------------------------------------------------------
# Type/shape inference
# ---------------------------------------------------------------------------


class TestTypecheck:
    def test_matching_join_keys_are_clean(self):
        result = compile_source(
            "var R: vector[double] = vector();\n"
            "for i = 0, 9 do R[i] := V[i] * W[i];",
            V=ast.vector_of(ast.DOUBLE),
            W=ast.vector_of(ast.DOUBLE),
        )
        assert check_types(result.target) == []

    def test_string_keyed_map_joined_with_long_index_is_d301(self):
        result = compile_source(
            "var R: vector[double] = vector();\n"
            "for i = 0, 9 do R[i] := V[i] * W[i];",
            V=ast.vector_of(ast.DOUBLE),
            W=ast.map_of(ast.STRING, ast.DOUBLE),
        )
        findings = check_types(result.target)
        assert [d.code for d in findings] == ["D301"]
        assert findings[0].location is not None and findings[0].location.line == 2

    def test_string_values_summed_with_plus_is_d302(self):
        result = compile_source(
            "var S: vector[double] = vector();\n"
            "for i = 0, 9 do S[i] += N[i];",
            N=ast.vector_of(ast.STRING),
        )
        assert "D302" in {d.code for d in check_types(result.target)}

    def test_unknown_types_stay_silent(self):
        # No declared types at all: inference must not guess.
        result = compile_source(
            "var R: vector[double] = vector();\n"
            "for i = 0, 9 do R[i] := V[i] * W[i];"
        )
        assert check_types(result.target) == []


# ---------------------------------------------------------------------------
# Plan lint
# ---------------------------------------------------------------------------


class TestPlanLint:
    MATMUL = (
        "var C: matrix[double] = matrix();\n"
        "for i = 0, 9 do\n"
        "  for j = 0, 9 do\n"
        "    for k = 0, 9 do\n"
        "      C[i, j] += A[i, k] * B[k, j];"
    )
    PRODUCT = (
        "var S: vector[double] = vector();\n"
        "for i = 0, 9 do\n"
        "  for j = 0, 9 do\n"
        "    S[i] += P[i] * Q[j];"
    )

    def test_joined_matmul_is_clean(self):
        result = compile_source(
            self.MATMUL, A=ast.matrix_of(ast.DOUBLE), B=ast.matrix_of(ast.DOUBLE)
        )
        assert lint_target(result.target) == []

    def test_product_is_warning_not_error(self):
        result = compile_source(
            self.PRODUCT, P=ast.vector_of(ast.DOUBLE), Q=ast.vector_of(ast.DOUBLE)
        )
        findings = lint_target(result.target)
        assert [d.code for d in findings] == ["D501"]
        assert all(d.severity is Severity.WARNING for d in findings)
        assert findings[0].location is not None and findings[0].location.line == 4

    def test_lint_plan_flags_product_nodes(self):
        from repro.algebra.plan import ProductNode, ScanNode

        root = ProductNode(
            left=ScanNode(dataset=None, name="P"),
            right=ScanNode(dataset=None, name="Q"),
            bind_right_fn=lambda row: {},
            domain_label="Q",
        )
        codes = {d.code for d in lint_plan(root, diablo.current_config())}
        assert codes == {"D501", "D503"}

    def test_lint_plan_flags_unplaced_hash_join(self):
        from repro.algebra.plan import HashJoinNode, ScanNode
        from repro.comprehension import ir

        join = HashJoinNode(
            left=ScanNode(dataset=None, name="A"),
            right=ScanNode(dataset=None, name="B"),
            left_key_fn=lambda row: row,
            right_key_fn=lambda row: row,
            rebuild_fn=lambda pair: pair,
            left_key_terms=(ir.CVar("k"),),
            right_key_terms=(ir.CVar("k"),),
            domain_label="B",
        )
        codes = {d.code for d in lint_plan(join)}
        assert codes == {"D502"}
        join.left_prepartitioned = True
        assert lint_plan(join) == []


# ---------------------------------------------------------------------------
# diablo.check end to end
# ---------------------------------------------------------------------------


class TestCheckApi:
    def test_clean_jit_function(self):
        @diablo.jit
        def addv(V: Vector, W: Vector, n: int):
            R: Vector = Vector()
            for i in range(n):
                R[i] = V[i] + W[i]
            return R

        report = diablo.check(addv)
        assert report.subject == "addv"
        assert list(report) == []

    def test_positional_types_override_annotations(self):
        def scale(V, n):
            R: Vector = Vector()
            for i in range(n):
                R[i] = V[i] * 2.0
            return R

        report = diablo.check(scale, Vector[float], int)
        assert list(report) == []

    def test_python_rejection_is_d001_with_line(self):
        def uses_break(V: Vector, n: int):
            s = 0.0
            for i in range(n):
                if V[i] > 0.0:
                    break
            return s

        report = diablo.check(uses_break)
        (finding,) = report.errors()
        assert finding.code == "D001"
        assert finding.location is not None and finding.location.line > 0

    def test_loop_source_parse_error_is_d002(self):
        report = diablo.check("for i = 0, do V[i] := 1;")
        assert report.codes() == ["D002"]

    def test_strict_promotes_warnings(self):
        source = (
            "var S: vector[double] = vector();\n"
            "for i = 0, 9 do\n  for j = 0, 9 do\n    S[i] += P[i] * Q[j];"
        )
        assert not diablo.check(source).has_errors
        assert diablo.check(source, strict=True).has_errors

    def test_custom_monoids_are_probed(self):
        from repro.comprehension.monoids import Monoid

        bogus = Monoid("avg2", 0.0, lambda a, b: (a + b) / 2.0)
        report = diablo.check("x := 1.0;", monoids=[bogus])
        assert "D401" in report.codes()

    def test_figure3_workloads_have_zero_error_findings(self):
        from repro.programs import PROGRAMS

        for spec in PROGRAMS.values():
            report = diablo.check(spec.source, monoids=spec.monoids)
            errors = [d.render() for d in report.errors()]
            assert errors == [], f"{spec.name}: {errors}"


# ---------------------------------------------------------------------------
# The strict knob on config / jit
# ---------------------------------------------------------------------------


class TestStrictMode:
    def test_strict_jit_rejects_product(self):
        @diablo.jit(strict=True)
        def prod(P: Vector, Q: Vector, n: int):
            S: Vector = Vector()
            for i in range(n):
                for j in range(n):
                    S[i] += P[i] * Q[j]
            return S

        with pytest.raises(StaticCheckError) as excinfo:
            prod.compile()
        assert any(d.code == "D501" for d in excinfo.value.diagnostics)

    def test_strict_jit_accepts_clean_function(self):
        @diablo.jit(strict=True)
        def addv(V: Vector, W: Vector, n: int):
            R: Vector = Vector()
            for i in range(n):
                R[i] = V[i] + W[i]
            return R

        assert addv.compile().target.statements

    def test_strict_does_not_share_cache_with_relaxed(self):
        source = (
            "var S: vector[double] = vector();\n"
            "for i = 0, 9 do\n  for j = 0, 9 do\n    S[i] += P[i] * Q[j];"
        )
        from repro.translate.cache import CompilationCache

        cache = CompilationCache()
        DiabloCompiler(cache=cache).compile(source)
        with pytest.raises(StaticCheckError):
            DiabloCompiler(strict=True, cache=cache).compile(source)

    def test_strict_config_flows_through_options(self):
        @diablo.jit
        def prod(P: Vector, Q: Vector, n: int):
            S: Vector = Vector()
            for i in range(n):
                for j in range(n):
                    S[i] += P[i] * Q[j]
            return S

        prod.compile()  # relaxed default is fine
        with diablo.options(strict=True):
            with pytest.raises(StaticCheckError):
                prod.compile()


# ---------------------------------------------------------------------------
# Frontend line-number contract
# ---------------------------------------------------------------------------


REJECTED_SNIPPETS = [
    "def f(V, n):\n    for i in range(n):\n        break\n",
    "def f(V, n):\n    for i in range(n):\n        continue\n",
    "def f(V):\n    return [v for v in V]\n",
    "def f(x):\n    y = lambda a: a\n    return y\n",
    "def f(x):\n    del x\n",
    "def f(x):\n    x = y = 1\n    return x\n",
    "def f(x):\n    x //= 2\n    return x\n",
    "def f(V, n):\n    for i in range(n):\n        pass\n    else:\n        n = 0\n",
    "def f(x):\n    if 0 < x < 2:\n        x = 1\n    return x\n",
    "def f(x):\n    y: int\n    return x\n",
    "def f(x):\n    def g():\n        return 1\n    return x\n",
]


class TestFrontendLineNumbers:
    @pytest.mark.parametrize("source", REJECTED_SNIPPETS)
    def test_every_rejection_carries_a_line(self, source):
        with pytest.raises(FrontendError) as excinfo:
            parse_python_source(source)
        assert isinstance(excinfo.value.line, int) and excinfo.value.line > 0
        assert f"(line {excinfo.value.line})" in str(excinfo.value)

    def test_unreadable_source_has_no_line_but_clear_message(self):
        from repro.loop_lang.python_frontend import parse_python_function

        with pytest.raises(FrontendError) as excinfo:
            parse_python_function(eval("lambda x: x"))
        assert excinfo.value.line is None
        assert "cannot read the source" in str(excinfo.value)

    def test_statement_spans_survive_to_target_origin(self):
        spec = parse_python_source(
            "def f(V: Vector, n: int):\n"
            "    total = 0.0\n"
            "    for i in range(n):\n"
            "        total += V[i]\n"
            "    return total\n"
        )
        lines = [s.location.line for s in spec.program.statements]
        assert lines == [2, 3]


# ---------------------------------------------------------------------------
# repro-lint CLI
# ---------------------------------------------------------------------------


class TestLintCli:
    def test_bad_fixture_reports_expected_codes(self, capsys):
        status = lint_main(
            [str(FIXTURES / "bad_program.py"), "--expect", "D102,D201,D501"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "D102" in out and "D201" in out and "D501" in out

    def test_bad_fixture_fails_without_expectations(self):
        assert lint_main([str(FIXTURES / "bad_program.py"), "-q"]) == 1

    def test_expectation_miss_fails(self, capsys):
        status = lint_main([str(FIXTURES / "bad_program.py"), "--expect", "D999x"])
        assert status == 1
        assert "not reported" in capsys.readouterr().err

    def test_fixture_line_numbers_match_the_file(self, capsys):
        lint_main([str(FIXTURES / "bad_program.py")])
        out = capsys.readouterr().out
        text = (FIXTURES / "bad_program.py").read_text().splitlines()
        assert "line 20" in out and "while s < 10.0" in text[19]
        assert "line 29" in out and "R[i * i]" in text[28]
        assert "line 38" in out and "S[i] += P[i] * Q[j]" in text[37]

    def test_examples_directory_is_clean(self):
        assert lint_main(["examples", "-q"]) == 0

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["/no/such/path"]) == 2
        assert "no such file" in capsys.readouterr().err


class TestMapAnnotation:
    def test_map_annotation_reaches_typecheck(self):
        @diablo.jit
        def lookup(W: Map[str, float], V: Vector, n: int):
            R: Vector = Vector()
            for i in range(n):
                R[i] = V[i] * W[i]
            return R

        report = diablo.check(lookup)
        assert "D301" in report.codes()
