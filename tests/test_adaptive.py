"""Differential oracle for adaptive skew-aware execution (PR 7).

The adaptive layer may only change *how* skewed shuffles execute -- sampled
histograms, hot-key salting, map-side grouping, histogram-driven range
bounds -- never *what* they compute.  These tests pin that guarantee on
zipf-skewed data across every executor mode, with and without spilling
forced at a 1-byte threshold, by comparing adaptive runs bit-for-bit
against adaptive-off runs.
"""

from __future__ import annotations

import pytest

from repro.runtime.context import EXECUTOR_MODES, DistributedContext
from repro.workloads import skewed_pairs


def _records(count=6_000, num_keys=20, seed=11):
    return [
        (row["K"], row["A"]) for row in skewed_pairs(count, num_keys=num_keys, seed=seed)
    ]


def _run(adaptive, executor="sequential", spill=None):
    """Group, reduce and sort the same skewed pairs; return plain values."""
    records = _records()
    with DistributedContext(
        num_partitions=4,
        executor=executor,
        adaptive=adaptive,
        spill_threshold_bytes=spill,
    ) as ctx:
        data = ctx.parallelize(records)
        grouped = {k: list(vs) for k, vs in data.group_by_key().collect()}
        reduced = dict(data.reduce_by_key(lambda a, b: a + b).collect())
        ordered = data.sort_by(lambda kv: kv[0]).collect()
        decisions = ctx.metrics.adaptive_decisions
    return grouped, reduced, ordered, decisions


class TestAdaptiveDifferential:
    @pytest.mark.parametrize("executor", EXECUTOR_MODES)
    def test_adaptive_matches_static_bit_for_bit(self, executor):
        grouped_on, reduced_on, ordered_on, decisions = _run(True, executor)
        grouped_off, reduced_off, ordered_off, off_decisions = _run(False, executor)
        assert off_decisions == 0
        assert decisions >= 1, "skewed shuffles must trigger adaptive decisions"
        # Grouped values arrive in a salted / map-side-combined order; the
        # per-key multisets must still be identical.
        assert grouped_on.keys() == grouped_off.keys()
        for key in grouped_on:
            assert sorted(grouped_on[key]) == sorted(grouped_off[key]), key
        assert reduced_on == reduced_off
        assert ordered_on == ordered_off

    @pytest.mark.parametrize("executor", EXECUTOR_MODES)
    def test_adaptive_matches_static_under_spilling(self, executor):
        grouped_on, reduced_on, ordered_on, _ = _run(True, executor, spill=1)
        grouped_off, reduced_off, ordered_off, _ = _run(False, executor, spill=1)
        assert grouped_on.keys() == grouped_off.keys()
        for key in grouped_on:
            assert sorted(grouped_on[key]) == sorted(grouped_off[key]), key
        assert reduced_on == reduced_off
        assert ordered_on == ordered_off

    def test_noncommutative_fold_order_is_preserved(self):
        # Salting splits a hot key across tasks; the final fold must stitch
        # the partials back in task order so non-commutative (but
        # associative) monoids -- string concatenation -- are unaffected.
        records = [("hot", f"<{i}>") for i in range(500)]
        records += [(f"cold{i}", f"[{i}]") for i in range(30)]
        results = {}
        for adaptive in (True, False):
            with DistributedContext(num_partitions=4, adaptive=adaptive) as ctx:
                reduced = ctx.parallelize(records).reduce_by_key(lambda a, b: a + b)
                results[adaptive] = dict(reduced.collect())
                if adaptive:
                    assert ctx.metrics.salted_keys >= 1
        assert results[True] == results[False]
