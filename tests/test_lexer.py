"""Tests for the loop-language tokenizer."""

import pytest

from repro.errors import LexerError
from repro.loop_lang.lexer import Token, tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source) if token.kind != "eof"]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_identifier(self):
        assert texts("sum_x") == ["sum_x"]

    def test_keyword_recognition(self):
        assert kinds("for")[:-1] == ["keyword"]
        assert kinds("while")[:-1] == ["keyword"]
        assert kinds("forx")[:-1] == ["ident"]

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].kind == "int"
        assert tokens[0].text == "42"

    def test_float_literal(self):
        tokens = tokenize("3.14")
        assert tokens[0].kind == "float"

    def test_float_with_exponent(self):
        tokens = tokenize("1.0e12")
        assert tokens[0].kind == "float"
        assert tokens[0].text == "1.0e12"

    def test_integer_followed_by_dot_projection_not_float(self):
        # "v.1" style is not produced by the benchmarks, but "2." should not
        # swallow the dot when no digit follows.
        tokens = tokenize("2.x")
        assert tokens[0].kind == "int"

    def test_string_literal_double_quotes(self):
        tokens = tokenize('"key1"')
        assert tokens[0].kind == "string"
        assert tokens[0].text == "key1"

    def test_string_literal_with_escape(self):
        tokens = tokenize(r'"a\nb"')
        assert tokens[0].text == "a\nb"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize('"abc')


class TestOperators:
    def test_assignment_operator(self):
        assert ":=" in texts("x := 1;")

    def test_incremental_operators(self):
        for symbol in ["+=", "-=", "*=", "/=", "^=", "^^="]:
            assert symbol in texts(f"x {symbol} 1;")

    def test_comparison_operators(self):
        for symbol in ["==", "!=", "<=", ">=", "<", ">"]:
            assert symbol in texts(f"a {symbol} b")

    def test_boolean_operators(self):
        assert "&&" in texts("a && b")
        assert "||" in texts("a || b")

    def test_custom_monoid_operators(self):
        assert "^" in texts("a ^ b")
        assert "^^" in texts("a ^^ b")

    def test_longest_match_wins(self):
        # "^^=" must not be tokenized as "^" "^" "=".
        assert texts("x ^^= y;")[1] == "^^="

    def test_unexpected_character_raises(self):
        with pytest.raises(LexerError):
            tokenize("a @ b")


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert texts("x // comment\n:= 1;") == ["x", ":=", "1", ";"]

    def test_hash_comment_skipped(self):
        assert texts("x # comment\n:= 1;") == ["x", ":=", "1", ";"]

    def test_block_comment_skipped(self):
        assert texts("x /* a\nb */ := 1;") == ["x", ":=", "1", ";"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("/* never closed")

    def test_locations_track_lines(self):
        tokens = tokenize("a\nb")
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2


class TestTokenHelpers:
    def test_is_symbol(self):
        token = tokenize("+")[0]
        assert token.is_symbol("+")
        assert not token.is_symbol("-")

    def test_is_keyword(self):
        token = tokenize("for")[0]
        assert token.is_keyword("for")
        assert not token.is_keyword("while")

    def test_str_representation(self):
        assert "int" in str(Token("int", "3", tokenize("3")[0].location))
