"""Tests for the Figure 2 translation rules and the compiler driver."""

import pytest

from repro.comprehension import ir
from repro.errors import TranslationError
from repro.loop_lang.parser import parse_expression, parse_program
from repro.translate.rules import TranslationRules
from repro.translate.target import TargetAssign, TargetWhile, VariableInfo
from repro.translate.translator import DiabloCompiler, infer_variables


def make_rules(**kinds):
    variables = {name: VariableInfo(name, kind) for name, kind in kinds.items()}
    return TranslationRules(variables, ir.NameGenerator())


class TestExpressionRule:
    def test_variable_lifts_to_singleton(self):
        rules = make_rules(x="scalar")
        term = rules.expression(parse_expression("x"))
        assert term == ir.singleton(ir.CVar("x"))

    def test_constant_lifts_to_singleton(self):
        rules = make_rules()
        assert rules.expression(parse_expression("42")) == ir.singleton(ir.CConst(42))

    def test_matrix_access_produces_generator_and_conditions(self):
        rules = make_rules(M="array")
        term = rules.expression(parse_expression("M[1, 2]"))
        assert isinstance(term, ir.Comprehension)
        generators = [q for q in term.qualifiers if isinstance(q, ir.Generator)]
        conditions = [q for q in term.qualifiers if isinstance(q, ir.Condition)]
        assert any(q.domain == ir.CVar("M") for q in generators)
        assert len(conditions) == 2

    def test_binary_operation_lifts_both_sides(self):
        rules = make_rules(A="scalar", B="scalar")
        term = rules.expression(parse_expression("A * B"))
        assert isinstance(term.head, ir.CBinOp)
        assert len([q for q in term.qualifiers if isinstance(q, ir.Generator)]) == 2

    def test_nested_array_access_is_rejected(self):
        rules = make_rules()
        with pytest.raises(TranslationError):
            rules.expression(parse_expression("f(x)[1]"))

    def test_call_arguments_are_lifted(self):
        rules = make_rules(P="array", i="scalar")
        term = rules.expression(parse_expression("distance(P[i], c)"))
        assert isinstance(term.head, ir.CCall)


class TestDestinationRules:
    def test_scalar_key_is_unit(self):
        rules = make_rules(x="scalar")
        assert rules.destination_key(parse_expression("x")) == ir.singleton(ir.CTuple(()))

    def test_vector_key_is_index_expression(self):
        rules = make_rules(V="array", i="scalar")
        term = rules.destination_key(parse_expression("V[i]"))
        assert term == ir.singleton(ir.CVar("i"))

    def test_matrix_key_is_tuple(self):
        rules = make_rules(M="array")
        term = rules.destination_key(parse_expression("M[i, j]"))
        assert isinstance(term.head, ir.CTuple)

    def test_destination_value_for_scalar(self):
        rules = make_rules(x="scalar")
        assert rules.destination_value(parse_expression("x"), ir.CVar("k")) == ir.singleton(ir.CVar("x"))

    def test_destination_value_for_vector_joins_on_key(self):
        rules = make_rules(V="array")
        term = rules.destination_value(parse_expression("V[i]"), ir.CVar("k"))
        conditions = [q for q in term.qualifiers if isinstance(q, ir.Condition)]
        assert len(conditions) == 1
        assert ir.CVar("k") in ir.walk_terms(conditions[0].term)

    def test_update_scalar_is_scalar_assignment(self):
        rules = make_rules(x="scalar")
        targets = rules.update(parse_expression("x"), ir.CVar("delta"))
        assert len(targets) == 1
        assert targets[0].variable == "x"
        assert targets[0].scalar

    def test_update_array_merges(self):
        rules = make_rules(V="array")
        targets = rules.update(parse_expression("V[i]"), ir.CVar("delta"))
        assert isinstance(targets[0].term, ir.Merge)
        assert not targets[0].scalar


class TestStatementRules:
    def test_incremental_array_update_uses_merge_with(self):
        rules = make_rules(V="array", W="array")
        program = parse_program("for i = 1, 10 do V[i] += W[i];")
        targets = rules.statement(program.statements[0], [])
        assert len(targets) == 1
        assert isinstance(targets[0].term, ir.MergeWith)
        assert targets[0].term.op == "+"

    def test_incremental_update_has_group_by(self):
        rules = make_rules(V="array", W="array")
        program = parse_program("for i = 1, 10 do V[i] += W[i];")
        targets = rules.statement(program.statements[0], [])
        delta = targets[0].term.right
        assert any(isinstance(q, ir.GroupBy) for q in delta.qualifiers)
        assert isinstance(delta.head.elements[1], ir.Aggregate)

    def test_if_generates_condition_qualifiers(self):
        rules = make_rules(V="collection", sum="scalar")
        program = parse_program("for v in V do if (v < 100) sum += v;")
        targets = rules.statement(program.statements[0], [])
        delta_quals = str(targets[0].term)
        assert "<" in delta_quals

    def test_if_else_generates_two_statements(self):
        rules = make_rules(V="collection", a="scalar", b="scalar")
        program = parse_program("for v in V do if (v < 10) a += 1; else b += 1;")
        targets = rules.statement(program.statements[0], [])
        assert len(targets) == 2
        assert {t.variable for t in targets} == {"a", "b"}

    def test_while_becomes_target_while(self):
        rules = make_rules(k="scalar")
        program = parse_program("while (k < 10) k += 1;")
        targets = rules.statement(program.statements[0], [])
        assert isinstance(targets[0], TargetWhile)
        assert len(targets[0].body) == 1

    def test_while_inside_for_is_rejected(self):
        rules = make_rules(V="array", k="scalar")
        program = parse_program("for i = 0, 9 do while (k < 10) k += 1;")
        with pytest.raises(TranslationError):
            rules.statement(program.statements[0], [])

    def test_block_concatenates_statements(self):
        rules = make_rules(V="collection", a="scalar", b="scalar")
        program = parse_program("for v in V do { a += v; b += 1; }")
        targets = rules.statement(program.statements[0], [])
        assert len(targets) == 2


class TestVariableInference:
    def test_declared_array_and_scalar(self):
        program = parse_program("var M: matrix[double] = matrix(); var x: int = 0;")
        variables = infer_variables(program)
        assert variables["M"].kind == "array"
        assert variables["x"].kind == "scalar"
        assert not variables["M"].is_input

    def test_free_indexed_variable_is_array_input(self):
        program = parse_program("var s: double = 0.0; for i = 0, 9 do s += V[i];")
        variables = infer_variables(program)
        assert variables["V"].kind == "array"
        assert variables["V"].is_input

    def test_traversed_variable_is_collection(self):
        program = parse_program("var s: double = 0.0; for v in V do s += v;")
        assert infer_variables(program)["V"].kind == "collection"

    def test_loop_indexes_are_not_variables(self):
        program = parse_program("for i = 0, 9 do V[i] += 1;")
        assert "i" not in infer_variables(program)

    def test_free_scalar_input(self):
        program = parse_program("var s: double = 0.0; s := n * 2;")
        variables = infer_variables(program)
        assert variables["n"].kind == "scalar"
        assert variables["n"].is_input


class TestCompilerDriver:
    def test_compile_returns_target_and_stats(self):
        result = DiabloCompiler().compile("var s: double = 0.0; for v in V do s += v;")
        assert result.target.statements
        assert result.translation_seconds >= 0
        assert "V" in result.target.input_names()

    def test_compile_python_function(self):
        def total(V):
            s: float = 0.0
            for v in V:
                s += v

        result = DiabloCompiler().compile(total)
        assert any(isinstance(s, TargetAssign) and s.variable == "s" for s in result.target.statements)

    def test_compile_rejects_unknown_source_type(self):
        with pytest.raises(TypeError):
            DiabloCompiler().compile(42)

    def test_while_condition_is_translated(self):
        result = DiabloCompiler().compile("var k: int = 0; while (k < 3) k += 1;")
        whiles = [s for s in result.target.statements if isinstance(s, TargetWhile)]
        assert len(whiles) == 1

    def test_target_program_str_and_assignments(self):
        result = DiabloCompiler().compile("var k: int = 0; while (k < 3) k += 1;")
        text = str(result.target)
        assert "while" in text
        assert any(a.variable == "k" for a in result.target.assignments())

    def test_unoptimized_compilation(self):
        result = DiabloCompiler(optimize=False).compile(
            "var R: matrix[double] = matrix(); for i = 0, n-1 do R[i,i] := M[i,i];"
        )
        assert result.optimizer_stats.total() == 0
