"""Tests for the example scripts and the benchmark program registry."""

import pathlib
import subprocess
import sys

import pytest

from repro.programs import (
    PROGRAMS,
    figure3_program_names,
    get_program,
    table1_program_names,
    table2_program_names,
)

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


class TestProgramRegistry:
    def test_twelve_figure3_programs_in_panel_order(self):
        names = figure3_program_names()
        assert len(names) == 12
        assert names[0] == "conditional_sum"
        assert names[-1] == "matrix_factorization"

    def test_table2_matches_figure3(self):
        assert table2_program_names() == figure3_program_names()

    def test_sixteen_table1_programs(self):
        names = table1_program_names()
        assert len(names) == 16
        assert len(set(names)) == 16
        assert all(name in PROGRAMS for name in names)

    def test_get_program(self):
        assert get_program("word_count").title == "Word Count"
        with pytest.raises(KeyError):
            get_program("nope")

    def test_every_program_declares_outputs(self):
        for spec in PROGRAMS.values():
            assert spec.scalar_outputs or spec.array_outputs, spec.name

    def test_kmeans_spec_carries_custom_monoids(self):
        spec = get_program("kmeans")
        assert {m.symbol for m in spec.monoids} == {"^", "^^"}
        assert "avgValue" in spec.functions


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_scripts_run(script):
    """Each example must run end to end (they contain their own assertions)."""
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples should print a summary"


def test_there_are_at_least_three_examples():
    assert len(EXAMPLES) >= 3
