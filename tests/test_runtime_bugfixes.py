"""Regression tests for latent runtime bugs fixed alongside the columnar work.

Each test encodes the *observable* wrong behaviour of the pre-fix code:

- ``aggregate_by_key`` seeded every key's accumulator with the same ``zero``
  object, so an in-place-mutating ``seq_op`` corrupted all keys.
- ``RangePartitioner.from_sample`` emitted duplicate split points on skewed
  samples, leaving empty partitions and one hot partition for ``sort_by``.
- ``_try_broadcast_join`` sized each side from the pre-chain source, so a
  side shrunk under the threshold by a captured ``filter`` never broadcast.
- ``Dataset.take``/``first`` forced every partition even for ``take(1)``.
"""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.runtime.context import DistributedContext
from repro.runtime.partitioner import HashPartitioner, RangePartitioner


def append_acc(acc, value):
    acc.append(value)
    return acc


class TestAggregateByKeyZeroAliasing:
    def test_list_zero_is_not_shared_between_keys(self):
        with DistributedContext(num_partitions=2) as ctx:
            data = ctx.parallelize_pairs([("a", 1), ("b", 2), ("a", 3), ("c", 4)])
            result = dict(data.aggregate_by_key([], append_acc, lambda a, b: a + b).collect())
        assert result == {"a": [1, 3], "b": [2], "c": [4]}

    def test_list_zero_on_the_narrow_keyed_pass(self):
        with DistributedContext(num_partitions=2) as ctx:
            data = ctx.parallelize_pairs([("a", 1), ("b", 2), ("a", 3)]).partition_by(
                HashPartitioner(2)
            )
            eliminated = ctx.metrics.shuffles_eliminated
            result = dict(data.aggregate_by_key([], append_acc, lambda a, b: a + b).collect())
            assert ctx.metrics.shuffles_eliminated == eliminated + 1, "must hit the narrow pass"
        assert result == {"a": [1, 3], "b": [2]}

    def test_dict_zero_is_not_shared_between_keys(self):
        def count_into(acc, value):
            acc[value] = acc.get(value, 0) + 1
            return acc

        def merge_counts(a, b):
            for key, count in b.items():
                a[key] = a.get(key, 0) + count
            return a

        with DistributedContext(num_partitions=2) as ctx:
            data = ctx.parallelize_pairs([("x", "p"), ("y", "q"), ("x", "p")])
            result = dict(data.aggregate_by_key({}, count_into, merge_counts).collect())
        assert result == {"x": {"p": 2}, "y": {"q": 1}}


class TestRangePartitionerSkewedSample:
    def test_from_sample_deduplicates_bounds(self):
        partitioner = RangePartitioner.from_sample(4, [5] * 37 + [1, 9])
        assert len(partitioner.bounds) == len(set(partitioner.bounds))
        assert partitioner.num_partitions == len(partitioner.bounds) + 1

    def test_from_sample_constant_sample_collapses(self):
        partitioner = RangePartitioner.from_sample(4, [7] * 100)
        assert partitioner.bounds == [7]
        assert partitioner.num_partitions == 2

    def test_sort_with_heavy_key_repetition(self):
        records = [(5, "dup")] * 40 + [(1, "lo"), (9, "hi"), (3, "mid")]
        with DistributedContext(num_partitions=4) as ctx:
            data = ctx.parallelize_raw(records)
            ordered = data.sort_by_key()
            collected = ordered.collect()
            assert collected == sorted(records, key=lambda kv: kv[0])
            assert isinstance(ordered.partitioner, RangePartitioner)
            bounds = ordered.partitioner.bounds
            assert len(bounds) == len(set(bounds)), "skewed sample must not repeat split points"


class TestBroadcastJoinSizing:
    def test_filter_shrunk_side_flips_to_broadcast(self):
        with DistributedContext(num_partitions=2, broadcast_join_threshold=5) as ctx:
            left = ctx.parallelize_pairs([(i, i) for i in range(100)])
            right = ctx.parallelize_pairs([(i, -i) for i in range(100)]).filter(
                lambda kv: kv[0] < 3
            )
            result = sorted(left.join(right).collect())
            assert ctx.metrics.join_strategies == {"broadcast": 1}
        assert result == [(i, (i, -i)) for i in range(3)]

    def test_fallback_to_shuffle_runs_the_chain_once(self):
        calls: list[int] = []

        def spy(kv):
            calls.append(kv[0])
            return kv

        with DistributedContext(num_partitions=2, broadcast_join_threshold=5) as ctx:
            left = ctx.parallelize_pairs([(i, i) for i in range(50)])
            right = ctx.parallelize_pairs([(i, -i) for i in range(50)]).map(spy)
            result = sorted(left.join(right).collect())
            assert ctx.metrics.join_strategies == {"shuffle": 1}
        assert result == [(i, (i, -i)) for i in range(50)]
        assert len(calls) == 50, "the captured chain must not run twice"


class TestTakeIsIncremental:
    def test_take_one_never_touches_later_partitions(self):
        seen: list[int] = []

        def spy(x):
            seen.append(x)
            return x

        with DistributedContext(num_partitions=4) as ctx:
            data = ctx.parallelize(range(100)).map(spy)
            assert data.take(1) == [0]
            assert seen, "the first partition's stage must run"
            assert max(seen) < 25, "later partitions' stage functions must not be invoked"
            # The dataset stays pending and still evaluates fully afterwards.
            assert data.collect() == list(range(100))

    def test_first_never_touches_later_partitions(self):
        seen: list[int] = []

        def spy(x):
            seen.append(x)
            return x

        with DistributedContext(num_partitions=4) as ctx:
            data = ctx.parallelize(range(100)).map(spy)
            assert data.first() == 0
            assert max(seen) < 25

    def test_take_spans_partitions_when_needed(self):
        with DistributedContext(num_partitions=4) as ctx:
            data = ctx.parallelize(range(10))
            assert data.take(7) == list(range(7))
            assert data.take(99) == list(range(10))
            assert data.take(0) == []

    def test_take_skips_empty_leading_partitions(self):
        with DistributedContext(num_partitions=3) as ctx:
            data = ctx.parallelize_raw([]).union(ctx.parallelize([42]))
            assert data.first() == 42

    def test_first_on_empty_dataset_raises(self):
        with DistributedContext(num_partitions=2) as ctx:
            with pytest.raises(ExecutionError):
                ctx.empty().first()

    def test_take_on_filtered_chain(self):
        with DistributedContext(num_partitions=4) as ctx:
            data = ctx.parallelize(range(100)).filter(lambda x: x % 10 == 9)
            assert data.take(2) == [9, 19]
