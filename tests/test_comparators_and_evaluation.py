"""Tests for the MOLD/Casper comparator simulators and the experiment harness."""


from repro.comparators.casper import CasperTranslator
from repro.comparators.mold import MoldTranslator
from repro.evaluation.figure3 import run_figure3_panel
from repro.evaluation.harness import (
    default_inputs,
    run_baseline,
    run_sequential_baseline,
    run_sequential_interpreter,
    run_translated,
)
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.table1 import format_table1, run_table1
from repro.evaluation.table2 import format_table2, run_table2
from repro.programs import get_program
from repro.workloads import workload_for_program


class TestMoldSimulator:
    def test_translates_simple_aggregations(self):
        mold = MoldTranslator()
        for name in ["sum", "conditional_sum", "word_count", "group_by", "histogram"]:
            result = mold.translate(get_program(name).source, name)
            assert result.succeeded, name
            assert result.operators

    def test_translates_matrix_multiplication(self):
        result = MoldTranslator().translate(get_program("matrix_multiplication").source)
        assert result.succeeded

    def test_fails_on_iterative_programs(self):
        for name in ["pagerank", "matrix_factorization"]:
            result = MoldTranslator().translate(get_program(name).source, name)
            assert not result.succeeded, name
            assert result.reason

    def test_search_budget_is_respected(self):
        mold = MoldTranslator(search_budget=10)
        result = mold.translate(get_program("pagerank").source)
        assert result.candidates_explored <= 11

    def test_search_explores_candidates(self):
        result = MoldTranslator().translate(get_program("kmeans").source)
        assert result.candidates_explored > 0


class TestCasperSimulator:
    def workload(self, name):
        return lambda size: workload_for_program(name, size, seed=29)

    def test_synthesizes_simple_scalar_summaries(self):
        casper = CasperTranslator(candidate_budget=5_000)
        for name in ["sum", "count", "conditional_sum", "equal"]:
            spec = get_program(name)
            result = casper.translate(spec.source, name, workload=self.workload(name))
            assert result.succeeded, (name, result.reason)
            assert result.summaries

    def test_synthesizes_word_count(self):
        casper = CasperTranslator(candidate_budget=5_000)
        result = casper.translate(
            get_program("word_count").source, "word_count", workload=self.workload("word_count")
        )
        assert result.succeeded
        assert "reduceByKey" in result.summaries["C"]

    def test_fails_on_matrix_programs(self):
        casper = CasperTranslator(candidate_budget=500)
        for name in ["matrix_multiplication", "pagerank", "matrix_factorization", "kmeans"]:
            spec = get_program(name)
            result = casper.translate(spec.source, name, workload=self.workload(name))
            assert not result.succeeded, name

    def test_fails_on_linear_regression_within_budget(self):
        casper = CasperTranslator(candidate_budget=300)
        spec = get_program("linear_regression")
        result = casper.translate(
            spec.source, "linear_regression", workload=self.workload("linear_regression")
        )
        assert not result.succeeded

    def test_no_workload_means_failure(self):
        result = CasperTranslator(candidate_budget=100).translate(get_program("sum").source)
        assert not result.succeeded


class TestHarness:
    def test_run_translated_and_baseline_agree(self):
        inputs = default_inputs("word_count", 300)
        translated = run_translated("word_count", inputs)
        baseline = run_baseline("word_count", inputs)
        assert translated.value.array("C") == baseline.value["C"]
        assert translated.seconds >= 0 and baseline.seconds >= 0

    def test_sequential_runs(self):
        inputs = default_inputs("conditional_sum", 200)
        interpreter = run_sequential_interpreter("conditional_sum", inputs)
        baseline = run_sequential_baseline("conditional_sum", inputs)
        assert abs(interpreter.value["sum"] - baseline.value["sum"]) < 1e-9


class TestExperiments:
    def test_table1_diablo_always_succeeds_and_is_fastest(self):
        rows = run_table1(
            programs=["sum", "word_count", "matrix_multiplication", "pagerank"],
            mold_budget=2_000,
            casper_budget=1_000,
        )
        assert len(rows) == 4
        for row in rows:
            assert row.diablo_seconds < 1.0
        by_name = {row.program: row for row in rows}
        # DIABLO translates the complex programs in milliseconds; the
        # search-based comparators burn their budget on them before failing.
        assert by_name["PageRank"].diablo_seconds < by_name["PageRank"].mold_seconds
        assert (
            by_name["Matrix Multiplication"].diablo_seconds
            < by_name["Matrix Multiplication"].casper_seconds
        )
        assert by_name["PageRank"].mold_failed
        assert by_name["Matrix Multiplication"].casper_failed
        assert "DIABLO" in format_table1(rows)

    def test_table1_without_comparators(self):
        rows = run_table1(programs=["sum"], include_comparators=False)
        assert rows[0].mold_seconds is None

    def test_table2_rows(self):
        rows = run_table2(
            sizes={"conditional_sum": 2_000, "word_count": 1_000},
            programs=["conditional_sum", "word_count"],
        )
        assert len(rows) == 2
        assert all(row.parallel_seconds > 0 and row.sequential_seconds > 0 for row in rows)
        assert "seq/par" in format_table2(rows)

    def test_figure3_panel_points(self):
        panel = run_figure3_panel("group_by", sizes=[500, 1_000])
        assert len(panel.points) == 2
        assert all(point.diablo_seconds > 0 for point in panel.points)
        assert all(point.diablo_shuffled_records > 0 for point in panel.points)

    def test_kmeans_panel_shows_the_paper_gap(self):
        panel = run_figure3_panel("kmeans", sizes=[200])
        point = panel.points[0]
        # DIABLO joins points with centroids; the hand-written program
        # broadcasts the centroids, so it shuffles far less and runs faster.
        assert point.diablo_shuffled_records > point.handwritten_shuffled_records
        assert point.diablo_seconds > point.handwritten_seconds

    def test_reporting_helpers(self):
        table = format_table(["a", "b"], [[1, 2.5], [3, 4.0]], title="t")
        assert "t" in table and "2.5" in table
        series = format_series("panel", "size", {"DIABLO": [(10, 0.5)]})
        assert "DIABLO" in series
