"""Known-bad programs for the ``repro-lint`` CLI and CI gate.

Every function here is deliberately broken; CI runs

    repro-lint tests/fixtures/bad_program.py --expect D102,D201,D501

and fails whenever any of these diagnostics stops being reported -- the
codes and the line numbers they attach to are part of the public contract
(see ``repro.analysis.diagnostics.CODES``).
"""

import repro.api as diablo
from repro.api import Vector


@diablo.jit
def while_inside_for(V: Vector, n: int):
    s = 0.0
    for i in range(n):
        while s < 10.0:  # D102: a nested while makes the loop sequential
            s += V[i]
    return s


@diablo.jit
def non_affine_destination(V: Vector, n: int):
    R: Vector = Vector()
    for i in range(n):
        R[i * i] = V[i]  # D201: destination index is not affine in i
    return R


@diablo.jit
def all_pairs_product(P: Vector, Q: Vector, n: int):
    S: Vector = Vector()
    for i in range(n):
        for j in range(n):
            S[i] += P[i] * Q[j]  # D501: no key links the two generators
    return S
