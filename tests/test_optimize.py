"""Tests for the Section 3.6 / Section 4 comprehension optimizations."""

from repro.comprehension import ir
from repro.comprehension.optimize import Optimizer
from repro.translate.translator import DiabloCompiler


def optimize(comp, arrays):
    return Optimizer(array_variables=arrays).optimize(comp)


class TestRangeElimination:
    def make_range_join(self):
        # { (i, w) | i <- range(1, 10), (j, w) <- W, j == i }
        return ir.Comprehension(
            ir.CTuple((ir.CVar("i"), ir.CVar("w"))),
            (
                ir.Generator(ir.PVar("i"), ir.RangeTerm(ir.CConst(1), ir.CConst(10))),
                ir.Generator(ir.PTuple((ir.PVar("j"), ir.PVar("w"))), ir.CVar("W")),
                ir.Condition(ir.CBinOp("==", ir.CVar("j"), ir.CVar("i"))),
            ),
        )

    def test_range_replaced_by_in_range_guard(self):
        result = optimize(self.make_range_join(), {"W"})
        assert not any(
            isinstance(q, ir.Generator) and isinstance(q.domain, ir.RangeTerm)
            for q in result.qualifiers
        )
        assert any(
            isinstance(q, ir.Condition) and isinstance(q.term, ir.InRange)
            for q in result.qualifiers
        )

    def test_head_is_rewritten_to_the_array_index(self):
        result = optimize(self.make_range_join(), {"W"})
        assert result.head == ir.CTuple((ir.CVar("j"), ir.CVar("w")))

    def test_affine_offset_is_inverted(self):
        # condition j == i - 1  =>  i = j + 1
        comp = ir.Comprehension(
            ir.CVar("i"),
            (
                ir.Generator(ir.PVar("i"), ir.RangeTerm(ir.CConst(0), ir.CConst(9))),
                ir.Generator(ir.PTuple((ir.PVar("j"), ir.PVar("w"))), ir.CVar("W")),
                ir.Condition(ir.CBinOp("==", ir.CVar("j"), ir.CBinOp("-", ir.CVar("i"), ir.CConst(1)))),
            ),
        )
        result = optimize(comp, {"W"})
        assert not any(
            isinstance(q, ir.Generator) and isinstance(q.domain, ir.RangeTerm)
            for q in result.qualifiers
        )
        assert result.head == ir.CBinOp("+", ir.CVar("j"), ir.CConst(1))

    def test_range_without_join_condition_is_kept(self):
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("i"), ir.CConst(0))),
            (ir.Generator(ir.PVar("i"), ir.RangeTerm(ir.CConst(1), ir.CVar("n"))),),
        )
        result = optimize(comp, set())
        assert any(
            isinstance(q, ir.Generator) and isinstance(q.domain, ir.RangeTerm)
            for q in result.qualifiers
        )

    def test_stats_count_rewrites(self):
        optimizer = Optimizer(array_variables={"W"})
        optimizer.optimize(self.make_range_join())
        assert optimizer.stats.ranges_eliminated == 1

    def test_disabled_range_elimination(self):
        optimizer = Optimizer(array_variables={"W"}, enable_range_elimination=False)
        result = optimizer.optimize(self.make_range_join())
        assert any(
            isinstance(q, ir.Generator) and isinstance(q.domain, ir.RangeTerm)
            for q in result.qualifiers
        )


class TestGroupByElimination:
    def test_constant_key_total_aggregation(self):
        # { (k, +/v) | (i, v) <- V, let k = (), group by k }  (Rule 16)
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("k"), ir.Aggregate("+", ir.CVar("v")))),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("v"))), ir.CVar("V")),
                ir.LetBinding(ir.PVar("k"), ir.CTuple(())),
                ir.GroupBy(ir.PVar("k"), None),
            ),
        )
        optimizer = Optimizer(array_variables={"V"})
        result = optimizer.optimize(comp)
        assert optimizer.stats.constant_key_group_bys_removed == 1
        assert not any(isinstance(q, ir.GroupBy) for q in result.qualifiers)
        # The lifted variable becomes a nested comprehension over V.
        assert any(
            isinstance(q, ir.LetBinding) and isinstance(q.term, ir.Comprehension)
            for q in result.qualifiers
        )

    def test_unique_key_removed(self):
        # { (k, +/w) | (i, w) <- W, let k = i, group by k }  (Rule 17)
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("k"), ir.Aggregate("+", ir.CVar("w")))),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("w"))), ir.CVar("W")),
                ir.LetBinding(ir.PVar("k"), ir.CVar("i")),
                ir.GroupBy(ir.PVar("k"), None),
            ),
        )
        optimizer = Optimizer(array_variables={"W"})
        result = optimizer.optimize(comp)
        assert optimizer.stats.unique_key_group_bys_removed == 1
        assert not any(isinstance(q, ir.GroupBy) for q in result.qualifiers)

    def test_non_unique_key_kept(self):
        # word count: key is the element value, not the index -> keep group-by.
        comp = ir.Comprehension(
            ir.CTuple((ir.CVar("k"), ir.Aggregate("+", ir.CVar("one")))),
            (
                ir.Generator(ir.PTuple((ir.PVar("i"), ir.PVar("w"))), ir.CVar("words")),
                ir.LetBinding(ir.PVar("one"), ir.CConst(1)),
                ir.GroupBy(ir.PVar("k"), ir.CVar("w")),
            ),
        )
        optimizer = Optimizer(array_variables={"words"})
        result = optimizer.optimize(comp)
        assert any(isinstance(q, ir.GroupBy) for q in result.qualifiers)
        assert optimizer.stats.unique_key_group_bys_removed == 0

    def test_matrix_multiplication_group_by_is_kept(self):
        compiler = DiabloCompiler()
        result = compiler.compile(
            """
            var R: matrix[double] = matrix();
            for i = 0, n-1 do
              for j = 0, n-1 do
                for k = 0, n-1 do
                  R[i,j] += M[i,k]*N[k,j];
            """
        )
        update = result.target.statements[-1]
        assert isinstance(update.term, ir.MergeWith)
        delta = update.term.right
        assert any(isinstance(q, ir.GroupBy) for q in delta.qualifiers)

    def test_vector_copy_group_by_is_removed(self):
        compiler = DiabloCompiler()
        result = compiler.compile("for i = 1, 10 do V[i] += W[i];")
        update = result.target.statements[-1]
        assert isinstance(update.term, ir.MergeWith)
        delta = update.term.right
        assert not any(isinstance(q, ir.GroupBy) for q in delta.qualifiers)
        assert result.optimizer_stats.unique_key_group_bys_removed == 1

    def test_scalar_sum_uses_rule_16(self):
        compiler = DiabloCompiler()
        result = compiler.compile("var s: double = 0.0; for v in V do s += v;")
        assert result.optimizer_stats.constant_key_group_bys_removed >= 1

    def test_disabled_group_by_elimination(self):
        compiler = DiabloCompiler(enable_group_by_elimination=False)
        result = compiler.compile("var s: double = 0.0; for v in V do s += v;")
        assert result.optimizer_stats.constant_key_group_bys_removed == 0


class TestOptimizedTranslationShapes:
    def test_matrix_multiplication_ranges_are_eliminated(self):
        compiler = DiabloCompiler()
        result = compiler.compile(
            """
            var R: matrix[double] = matrix();
            for i = 0, n-1 do
              for j = 0, n-1 do {
                R[i,j] := 0.0;
                for k = 0, n-1 do
                  R[i,j] += M[i,k]*N[k,j];
              };
            """
        )
        assert result.optimizer_stats.ranges_eliminated >= 3
        final = result.target.statements[-1]
        delta = final.term.right
        # The delta scans M and N and joins them on the shared index.
        scanned = {
            q.domain.name
            for q in delta.qualifiers
            if isinstance(q, ir.Generator) and isinstance(q.domain, ir.CVar)
        }
        assert {"M", "N"} <= scanned

    def test_vector_init_keeps_range_generator(self):
        compiler = DiabloCompiler()
        result = compiler.compile("for i = 1, n do V[i] := 0;")
        assign = result.target.statements[-1]
        merged = assign.term
        assert isinstance(merged, ir.Merge)
        assert any(
            isinstance(q, ir.Generator) and isinstance(q.domain, ir.RangeTerm)
            for q in merged.right.qualifiers
        )
