"""Tests for the local DISC runtime (datasets, context, partitioners, metrics)."""

import pytest

from repro.errors import ExecutionError
from repro.runtime.context import DistributedContext
from repro.runtime.partitioner import HashPartitioner, RangePartitioner


@pytest.fixture
def ctx():
    return DistributedContext(num_partitions=4)


class TestContext:
    def test_parallelize_preserves_records(self, ctx):
        data = list(range(10))
        dataset = ctx.parallelize(data)
        assert sorted(dataset.collect()) == data
        assert dataset.num_partitions == 4

    def test_partition_sizes_are_balanced(self, ctx):
        dataset = ctx.parallelize(range(10))
        sizes = [len(p) for p in dataset.partitions]
        assert max(sizes) - min(sizes) <= 1

    def test_indexed_creates_positional_keys(self, ctx):
        dataset = ctx.indexed(["a", "b", "c"])
        assert dict(dataset.collect()) == {0: "a", 1: "b", 2: "c"}

    def test_range_dataset_is_inclusive(self, ctx):
        assert sorted(ctx.range_dataset(1, 5).collect()) == [1, 2, 3, 4, 5]

    def test_empty_range(self, ctx):
        assert ctx.range_dataset(5, 1).collect() == []

    def test_parallelize_pairs_from_dict(self, ctx):
        dataset = ctx.parallelize_pairs({1: "a", 2: "b"})
        assert dataset.collect_as_map() == {1: "a", 2: "b"}

    def test_broadcast(self, ctx):
        broadcast = ctx.broadcast({"a": 1})
        assert broadcast.value["a"] == 1
        assert ctx.metrics.broadcasts == 1

    def test_invalid_partitions_rejected(self):
        with pytest.raises(ValueError):
            DistributedContext(num_partitions=0)

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            DistributedContext(executor="gpu")

    def test_threaded_executor_runs_tasks(self):
        with DistributedContext(num_partitions=4, executor="threads", num_threads=2) as ctx:
            result = ctx.parallelize(range(100)).map(lambda x: x * 2).collect()
            assert sorted(result) == [x * 2 for x in range(100)]

    def test_threaded_executor_propagates_errors(self):
        with DistributedContext(num_partitions=4, executor="threads") as ctx:
            with pytest.raises(ExecutionError):
                ctx.parallelize(range(10)).map(lambda x: 1 / 0).collect()

    def test_process_executor_runs_tasks(self):
        with DistributedContext(num_partitions=4, executor="processes") as ctx:
            result = ctx.parallelize(range(100)).map(lambda x: x * 2).collect()
            assert sorted(result) == [x * 2 for x in range(100)]


class TestLazyEngine:
    def test_narrow_operations_are_lazy(self, ctx):
        base = ctx.parallelize(range(10)).materialize()
        pending = base.map(lambda x: x + 1).filter(lambda x: x > 3)
        assert not pending.is_materialized
        assert len(pending.pending_stages) == 2
        assert pending.num_partitions == base.num_partitions  # answered without forcing
        assert "pending" in repr(pending)

    def test_accessing_partitions_forces_the_chain(self, ctx):
        pending = ctx.parallelize(range(10)).map(lambda x: x + 1)
        assert not pending.is_materialized
        assert sum(len(p) for p in pending.partitions) == 10
        assert pending.is_materialized
        assert pending.pending_stages == ()

    def test_cache_is_a_materialization_point(self, ctx):
        chain = ctx.parallelize(range(10)).map(lambda x: x * 2)
        cached = chain.cache()
        assert cached is chain
        assert cached.is_materialized
        # Chaining off a cached dataset starts a fresh pending chain.
        derived = cached.filter(lambda x: x > 5)
        assert not derived.is_materialized
        assert len(derived.pending_stages) == 1

    def test_chains_fuse_into_one_stage(self, ctx):
        base = ctx.parallelize(range(20)).materialize()
        ctx.metrics.reset()
        result = (
            base.map(lambda x: x + 1)
            .filter(lambda x: x % 2 == 0)
            .map(lambda x: x * 10)
            .collect()
        )
        assert sorted(result) == [x * 10 for x in range(1, 21) if x % 2 == 0]
        assert ctx.metrics.fused_stages == 1
        assert ctx.metrics.fused_operators == 3
        assert ctx.metrics.datasets_created == 1

    def test_forcing_is_idempotent(self, ctx):
        pending = ctx.parallelize(range(10)).map(lambda x: x + 1)
        first = pending.collect()
        stages = ctx.metrics.fused_stages
        second = pending.collect()
        assert first == second
        assert ctx.metrics.fused_stages == stages, "second collect reuses the result"

    def test_sibling_chains_do_not_interfere(self, ctx):
        base = ctx.parallelize(range(10)).materialize()
        evens = base.filter(lambda x: x % 2 == 0)
        odds = base.filter(lambda x: x % 2 == 1)
        assert sorted(evens.collect()) == [0, 2, 4, 6, 8]
        assert sorted(odds.collect()) == [1, 3, 5, 7, 9]


class TestNarrowOperations:
    def test_map_filter_flat_map(self, ctx):
        dataset = ctx.parallelize(range(10))
        assert sorted(dataset.map(lambda x: x * x).collect())[:3] == [0, 1, 4]
        assert sorted(dataset.filter(lambda x: x % 2 == 0).collect()) == [0, 2, 4, 6, 8]
        assert sorted(dataset.flat_map(lambda x: [x, x]).collect()).count(3) == 2

    def test_map_values_and_keys(self, ctx):
        dataset = ctx.parallelize_pairs({1: 10, 2: 20})
        assert dataset.map_values(lambda v: v + 1).collect_as_map() == {1: 11, 2: 21}
        assert sorted(dataset.keys().collect()) == [1, 2]
        assert sorted(dataset.values().collect()) == [10, 20]

    def test_key_by(self, ctx):
        dataset = ctx.parallelize(["aa", "b"])
        assert dict(dataset.key_by(len).collect()) == {2: "aa", 1: "b"}

    def test_zip_with_index(self, ctx):
        dataset = ctx.parallelize(["a", "b", "c"])
        indexed = dict(dataset.zip_with_index().collect())
        assert indexed == {"a": 0, "b": 1, "c": 2}

    def test_union(self, ctx):
        left = ctx.parallelize([1, 2])
        right = ctx.parallelize([3])
        assert sorted(left.union(right).collect()) == [1, 2, 3]

    def test_union_concatenates_partitions(self, ctx):
        left = ctx.parallelize(range(8))
        right = ctx.parallelize(range(8), num_partitions=2)
        assert left.union(right).num_partitions == left.num_partitions + right.num_partitions

    def test_union_normalizes_partition_count_on_request(self, ctx):
        left = ctx.parallelize(range(8))
        right = ctx.parallelize(range(8, 16))
        normalized = left.union(right, num_partitions=4)
        assert normalized.num_partitions == 4
        assert sorted(normalized.collect()) == list(range(16))

    def test_zip_partitions_requires_same_partition_count(self, ctx):
        left = ctx.parallelize(range(4))
        right = ctx.parallelize(range(4), num_partitions=2)
        with pytest.raises(ExecutionError):
            left.zip_partitions(right, lambda a, b: a + b)

    def test_map_partitions(self, ctx):
        dataset = ctx.parallelize(range(8))
        sums = dataset.map_partitions(lambda part: [sum(part)]).collect()
        assert sum(sums) == sum(range(8))

    def test_take_and_first(self, ctx):
        dataset = ctx.parallelize(range(10))
        assert len(dataset.take(3)) == 3
        assert dataset.first() in range(10)

    def test_first_on_empty_raises(self, ctx):
        with pytest.raises(ExecutionError):
            ctx.empty().first()

    def test_sample_is_deterministic(self, ctx):
        dataset = ctx.parallelize(range(100))
        assert dataset.sample(0.3, seed=5).collect() == dataset.sample(0.3, seed=5).collect()

    def test_sample_agrees_across_executors(self):
        # Regression: sampling used one shared generator mutated from every
        # partition, so results depended on partition evaluation order.  Each
        # partition now derives its own generator from (seed, index).
        results = {}
        for executor in ("sequential", "threads", "processes"):
            with DistributedContext(num_partitions=4, executor=executor) as ctx:
                results[executor] = ctx.parallelize(range(200)).sample(0.3, seed=5).collect()
        assert results["sequential"] == results["threads"] == results["processes"]
        assert 0 < len(results["sequential"]) < 200

    def test_sample_varies_with_seed(self, ctx):
        dataset = ctx.parallelize(range(200))
        assert dataset.sample(0.5, seed=1).collect() != dataset.sample(0.5, seed=2).collect()


class TestActions:
    def test_reduce_and_fold(self, ctx):
        dataset = ctx.parallelize([1, 2, 3, 4])
        assert dataset.reduce(lambda a, b: a + b) == 10
        assert dataset.fold(0, lambda a, b: a + b) == 10
        assert ctx.empty().fold(7, lambda a, b: a + b) == 7

    def test_reduce_on_empty_raises(self, ctx):
        with pytest.raises(ExecutionError):
            ctx.empty().reduce(lambda a, b: a + b)

    def test_aggregate(self, ctx):
        dataset = ctx.parallelize(range(10))
        count_and_sum = dataset.aggregate(
            (0, 0), lambda acc, x: (acc[0] + 1, acc[1] + x), lambda a, b: (a[0] + b[0], a[1] + b[1])
        )
        assert count_and_sum == (10, 45)

    def test_count_by_value(self, ctx):
        dataset = ctx.parallelize(["a", "b", "a"])
        assert dataset.count_by_value() == {"a": 2, "b": 1}

    def test_count_and_is_empty(self, ctx):
        assert ctx.parallelize(range(5)).count() == 5
        assert ctx.empty().is_empty()

    def test_sum(self, ctx):
        assert ctx.parallelize([1.5, 2.5]).sum() == 4.0


class TestShuffleOperations:
    def test_group_by_key(self, ctx):
        dataset = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)])
        grouped = dict(dataset.group_by_key().map_values(sorted).collect())
        assert grouped == {"a": [1, 3], "b": [2]}

    def test_reduce_by_key(self, ctx):
        dataset = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)])
        assert dataset.reduce_by_key(lambda a, b: a + b).collect_as_map() == {"a": 4, "b": 2}

    def test_reduce_by_key_counts_one_shuffle(self, ctx):
        dataset = ctx.parallelize([("a", 1)] * 100)
        ctx.metrics.reset()
        dataset.reduce_by_key(lambda a, b: a + b).materialize()
        assert ctx.metrics.shuffles == 1
        # Map-side combining means at most one record per partition is shuffled.
        assert ctx.metrics.shuffled_records <= dataset.num_partitions
        assert ctx.metrics.combiner_input_records == 100
        assert ctx.metrics.combiner_output_records <= dataset.num_partitions
        assert ctx.metrics.combiner_hit_rate > 0.9

    def test_group_by_key_shuffles_all_records(self):
        # Baseline accounting (adaptive off): groupByKey has no map-side
        # combiner, so every record crosses the shuffle.
        with DistributedContext(num_partitions=4, adaptive=False) as ctx:
            dataset = ctx.parallelize([("a", 1)] * 100)
            ctx.metrics.reset()
            dataset.group_by_key().materialize()
            assert ctx.metrics.shuffled_records == 100
            assert ctx.metrics.shuffled_bytes > 0

    def test_adaptive_group_by_key_ships_one_partial_per_task(self, ctx):
        # With adaptive execution (the default) the sampled 100x duplication
        # switches the same shuffle to map-side grouping: each of the 4 map
        # tasks emits a single ("a", [values]) partial.
        dataset = ctx.parallelize([("a", 1)] * 100)
        ctx.metrics.reset()
        grouped = dataset.group_by_key().materialize()
        assert ctx.metrics.shuffled_records == 4
        assert ctx.metrics.adaptive_decisions == 1
        assert grouped.collect() == [("a", [1] * 100)]

    def test_shuffles_are_lazy_plan_nodes(self, ctx):
        dataset = ctx.parallelize([("a", 1)] * 20)
        ctx.metrics.reset()
        pending = dataset.map_values(lambda v: v + 1).group_by_key()
        assert not pending.is_materialized
        assert ctx.metrics.shuffles == 0, "building the plan must not shuffle"
        assert "groupByKey" in repr(pending)
        pending.materialize()
        assert ctx.metrics.shuffles == 1
        # The pending map_values chain was fused into the shuffle's map side.
        assert ctx.metrics.fused_stages == 1
        assert ctx.metrics.fused_operators == 1

    def test_aggregate_by_key(self, ctx):
        dataset = ctx.parallelize([("a", 1), ("a", 2), ("b", 5)])
        result = dataset.aggregate_by_key(0, lambda acc, v: acc + v, lambda a, b: a + b)
        assert result.collect_as_map() == {"a": 3, "b": 5}

    def test_distinct(self, ctx):
        assert sorted(ctx.parallelize([1, 1, 2, 3, 3]).distinct().collect()) == [1, 2, 3]

    def test_sort_by(self, ctx):
        dataset = ctx.parallelize([3, 1, 2])
        assert ctx.parallelize([3, 1, 2]).sort_by(lambda x: x).collect() == [1, 2, 3]
        assert dataset.sort_by(lambda x: x, ascending=False).collect() == [3, 2, 1]

    def test_partition_by_places_keys_consistently(self, ctx):
        dataset = ctx.parallelize([(i, i) for i in range(20)])
        partitioner = HashPartitioner(4)
        placed = dataset.partition_by(partitioner)
        for index, partition in enumerate(placed.partitions):
            for key, _value in partition:
                assert partitioner.partition(key) == index

    def test_partition_by_same_partitioner_is_noop(self, ctx):
        dataset = ctx.parallelize([(i, i) for i in range(20)]).partition_by(HashPartitioner(4))
        again = dataset.partition_by(HashPartitioner(4))
        assert again is dataset

    def test_repartition(self, ctx):
        dataset = ctx.parallelize(range(10)).repartition(2)
        assert dataset.num_partitions == 2
        assert sorted(dataset.collect()) == list(range(10))

    def test_repartition_rejects_non_positive_counts(self, ctx):
        dataset = ctx.parallelize(range(10))
        with pytest.raises(ValueError):
            dataset.repartition(0)
        with pytest.raises(ValueError):
            dataset.repartition(-3)


class TestJoins:
    def test_inner_join(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2)])
        right = ctx.parallelize([("a", 10), ("c", 30)])
        assert dict(left.join(right).collect()) == {"a": (1, 10)}

    def test_join_produces_all_pairs(self, ctx):
        left = ctx.parallelize([("a", 1), ("a", 2)])
        right = ctx.parallelize([("a", 10)])
        assert sorted(pair[1] for pair in left.join(right).collect()) == [(1, 10), (2, 10)]

    def test_left_outer_join(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2)])
        right = ctx.parallelize([("a", 10)])
        result = dict(left.left_outer_join(right).collect())
        assert result["b"] == (2, None)

    def test_right_and_full_outer_join(self, ctx):
        left = ctx.parallelize([("a", 1)])
        right = ctx.parallelize([("b", 2)])
        assert dict(left.right_outer_join(right).collect())["b"] == (None, 2)
        full = dict(left.full_outer_join(right).collect())
        assert full == {"a": (1, None), "b": (None, 2)}

    def test_co_group(self, ctx):
        left = ctx.parallelize([("a", 1), ("a", 2)])
        right = ctx.parallelize([("a", 10), ("b", 20)])
        grouped = dict(left.co_group(right).collect())
        assert sorted(grouped["a"][0]) == [1, 2]
        assert grouped["b"] == ([], [20])

    def test_broadcast_join(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2)])
        right = ctx.parallelize([("a", 10)])
        ctx.metrics.reset()
        result = dict(left.broadcast_join(right).collect())
        assert result == {"a": (1, 10)}
        assert ctx.metrics.shuffles == 0

    def test_cartesian(self, ctx):
        left = ctx.parallelize([1, 2])
        right = ctx.parallelize(["x"])
        assert sorted(left.cartesian(right).collect()) == [(1, "x"), (2, "x")]

    def test_merge_right_side_wins(self, ctx):
        left = ctx.parallelize([(3, 10), (1, 20)])
        right = ctx.parallelize([(1, 30), (4, 40)])
        # The paper's ⊳ example: {(3,10),(1,20)} ⊳ {(1,30),(4,40)}.
        assert left.merge(right).collect_as_map() == {3: 10, 1: 30, 4: 40}

    def test_merge_with_combines_both_sides(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 5)])
        right = ctx.parallelize([("a", 2), ("c", 7)])
        merged = left.merge_with(right, lambda a, b: a + b).collect_as_map()
        assert merged == {"a": 3, "b": 5, "c": 7}


class TestPartitioners:
    def test_hash_partitioner_range(self):
        partitioner = HashPartitioner(5)
        assert all(0 <= partitioner.partition(key) < 5 for key in ["a", 1, (2, 3)])

    def test_hash_partitioner_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(8)

    def test_range_partitioner(self):
        partitioner = RangePartitioner(3, [10, 20])
        assert partitioner.partition(5) == 0
        assert partitioner.partition(15) == 1
        assert partitioner.partition(100) == 2

    def test_range_partitioner_validates_bounds(self):
        with pytest.raises(ValueError):
            RangePartitioner(3, [10])

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestMetrics:
    def test_snapshot_and_reset(self, ctx):
        ctx.parallelize(range(10)).map(lambda x: x).count()
        snapshot = ctx.metrics.snapshot()
        assert snapshot["narrow_tasks"] > 0
        ctx.metrics.reset()
        assert ctx.metrics.snapshot()["narrow_tasks"] == 0

    def test_shuffle_operations_are_named(self, ctx):
        ctx.parallelize([("a", 1)]).group_by_key().materialize()
        assert "groupByKey" in ctx.metrics.shuffle_operations
