"""Tests for the pretty printer and the AST helper functions."""

from repro.loop_lang import ast
from repro.loop_lang.parser import parse_expression, parse_program, parse_statement
from repro.loop_lang.pretty import pretty_expr, pretty_program, pretty_stmt


class TestPrettyRoundTrip:
    def test_expression_round_trip(self):
        source = "(M[i,k] * N[k,j])"
        expr = parse_expression(source)
        assert parse_expression(pretty_expr(expr)) == expr

    def test_statement_round_trip(self):
        stmt = parse_statement("for i = 0, 9 do V[i] += W[i];")
        printed = pretty_stmt(stmt)
        assert parse_program(printed).statements[0] == stmt

    def test_program_round_trip_for_all_benchmarks(self):
        from repro.programs import PROGRAMS

        for spec in PROGRAMS.values():
            program = parse_program(spec.source)
            reparsed = parse_program(pretty_program(program))
            assert reparsed == program, spec.name

    def test_string_constants_are_quoted(self):
        assert pretty_expr(ast.Const("key1")) == '"key1"'

    def test_boolean_constants(self):
        assert pretty_expr(ast.Const(True)) == "true"
        assert pretty_expr(ast.Const(False)) == "false"


class TestAstHelpers:
    def test_is_destination(self):
        assert ast.is_destination(parse_expression("V[i]"))
        assert ast.is_destination(parse_expression("p.red"))
        assert ast.is_destination(parse_expression("x"))
        assert not ast.is_destination(parse_expression("x + 1"))
        assert not ast.is_destination(parse_expression("f(x)"))

    def test_destination_root(self):
        assert ast.destination_root(parse_expression("V[i]")).name == "V"
        assert ast.destination_root(parse_expression("closest[i].index")).name == "closest"

    def test_free_variables(self):
        expr = parse_expression("M[i,k] * N[k,j] + c")
        assert ast.free_variables(expr) == {"M", "N", "i", "j", "k", "c"}

    def test_substitute(self):
        expr = parse_expression("a + b")
        replaced = ast.substitute(expr, {"a": ast.Const(1)})
        assert replaced == ast.BinOp("+", ast.Const(1), ast.Var("b"))

    def test_substitute_inside_index(self):
        expr = parse_expression("V[i + 1]")
        replaced = ast.substitute(expr, {"i": ast.Var("j")})
        assert "j" in ast.free_variables(replaced)
        assert "i" not in ast.free_variables(replaced)

    def test_walk_statements_visits_nested(self):
        stmt = parse_statement("for i = 0, 9 do { x += 1; y += 2; }")
        kinds = [type(node).__name__ for node in ast.walk_statements(stmt)]
        assert kinds.count("IncrementalUpdate") == 2

    def test_statement_expressions(self):
        stmt = parse_statement("V[i] := W[i] + 1;")
        expressions = list(ast.statement_expressions(stmt))
        assert len(expressions) == 2

    def test_declared_variables(self):
        program = parse_program("var x: int = 0; var V: vector[double] = vector();")
        declared = ast.declared_variables(program)
        assert declared["x"] == ast.BasicType("int")
        assert ast.is_array_type(declared["V"])

    def test_loop_index_variables(self):
        stmt = parse_statement("for i = 0, 9 do for j = 0, 9 do x += 1;")
        assert ast.loop_index_variables(stmt) == {"i", "j"}

    def test_rename_loop_variable(self):
        stmt = parse_statement("for i = 0, 9 do V[i] := W[i];")
        renamed = ast.rename_loop_variable(stmt.body, "i", "i2")
        assert "i2" in ast.free_variables(renamed.destination)

    def test_type_constructors(self):
        assert str(ast.vector_of(ast.DOUBLE)) == "vector[double]"
        assert str(ast.matrix_of(ast.DOUBLE)) == "matrix[double]"
        assert str(ast.map_of(ast.STRING, ast.INT)) == "map[string, int]"
        assert ast.is_collection_type(ast.bag_of(ast.INT))
        assert not ast.is_array_type(ast.BasicType("int"))
