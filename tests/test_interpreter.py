"""Tests for the sequential reference interpreter."""

import pytest

from repro.comprehension.monoids import MonoidRegistry, argmin_monoid, avg_monoid
from repro.errors import InterpreterError
from repro.functions import FunctionRegistry
from repro.loop_lang.interpreter import Interpreter, interpret_program


class TestScalars:
    def test_declaration_and_assignment(self):
        state = interpret_program("var x: int = 1; x := x + 2;")
        assert state["x"] == 3

    def test_incremental_update(self):
        state = interpret_program("var x: int = 0; x += 5; x += 7;")
        assert state["x"] == 12

    def test_multiplicative_update(self):
        state = interpret_program("var x: int = 1; x *= 3; x *= 4;")
        assert state["x"] == 12

    def test_boolean_operators(self):
        state = interpret_program("var b: bool = true; b := b && false; var c: bool = false; c := c || true;")
        assert state["b"] is False
        assert state["c"] is True

    def test_comparisons(self):
        state = interpret_program("var b: bool = false; b := 3 < 5;")
        assert state["b"] is True

    def test_division_of_integers_gives_exact_result_when_divisible(self):
        state = interpret_program("var x: int = 10; x := x / 2;")
        assert state["x"] == 5

    def test_unary_minus_and_not(self):
        state = interpret_program("var x: int = 0; x := -5; var b: bool = true; b := !b;")
        assert state["x"] == -5
        assert state["b"] is False

    def test_undefined_variable_raises(self):
        with pytest.raises(InterpreterError):
            interpret_program("x := y + 1;")


class TestLoops:
    def test_for_range_is_inclusive(self):
        state = interpret_program("var s: int = 0; for i = 1, 4 do s += i;")
        assert state["s"] == 10

    def test_for_range_with_expression_bounds(self):
        state = interpret_program("var s: int = 0; for i = 0, n-1 do s += 1;", {"n": 5})
        assert state["s"] == 5

    def test_for_in_over_list(self):
        state = interpret_program("var s: double = 0.0; for v in V do s += v;", {"V": [1.0, 2.0, 3.0]})
        assert state["s"] == 6.0

    def test_for_in_over_dict_iterates_values(self):
        state = interpret_program("var s: int = 0; for v in V do s += v;", {"V": {10: 1, 20: 2}})
        assert state["s"] == 3

    def test_while_loop(self):
        state = interpret_program("var k: int = 0; while (k < 5) k += 1;")
        assert state["k"] == 5

    def test_nested_loops(self):
        state = interpret_program("var s: int = 0; for i = 1, 3 do for j = 1, 3 do s += 1;")
        assert state["s"] == 9

    def test_if_else(self):
        source = "var a: int = 0; var b: int = 0; for v in V do if (v < 10) a += 1; else b += 1;"
        state = interpret_program(source, {"V": [1, 20, 3, 30]})
        assert state["a"] == 2
        assert state["b"] == 2


class TestArrays:
    def test_vector_update_and_read(self):
        state = interpret_program("var V: vector[int] = vector(); V[3] := 7; V[3] += 1;")
        assert state["V"] == {3: 8}

    def test_matrix_update(self):
        state = interpret_program("var M: matrix[int] = matrix(); M[1,2] := 5;")
        assert state["M"] == {(1, 2): 5}

    def test_missing_entry_defaults_to_zero(self):
        state = interpret_program("var x: int = 0; x := V[99];", {"V": {1: 5}})
        assert state["x"] == 0

    def test_missing_entry_error_mode(self):
        with pytest.raises(InterpreterError):
            interpret_program("var x: int = 0; x := V[99];", {"V": {1: 5}}, missing_default=None)

    def test_incremental_update_on_missing_entry_uses_identity(self):
        state = interpret_program(
            "var C: map[string,int] = map(); for w in words do C[w] += 1;", {"words": ["a", "a", "b"]}
        )
        assert state["C"] == {"a": 2, "b": 1}

    def test_list_inputs_are_indexed_by_position(self):
        state = interpret_program("var x: double = 0.0; x := P[1];", {"P": [10.0, 20.0]})
        assert state["x"] == 20.0

    def test_indexing_with_array_value(self):
        state = interpret_program(
            "var W: vector[int] = vector(); for i = 0, 2 do W[K[i]] += V[i];",
            {"K": {0: 5, 1: 5, 2: 6}, "V": {0: 1, 1: 2, 2: 3}},
        )
        assert state["W"] == {5: 3, 6: 3}

    def test_input_arrays_are_not_mutated(self):
        original = {0: 1}
        interpret_program("V[0] := 99;", {"V": original})
        assert original == {0: 1}


class TestRecordsAndFunctions:
    def test_record_projection(self):
        state = interpret_program("var x: int = 0; x := p.red;", {"p": {"red": 7}})
        assert state["x"] == 7

    def test_tuple_projection(self):
        state = interpret_program("var x: double = 0.0; x := p._2;", {"p": (1.0, 2.0)})
        assert state["x"] == 2.0

    def test_unknown_projection_raises(self):
        with pytest.raises(InterpreterError):
            interpret_program("var x: int = 0; x := p.green;", {"p": {"red": 7}})

    def test_builtin_function_call(self):
        state = interpret_program("var x: double = 0.0; x := sqrt(16.0);")
        assert state["x"] == 4.0

    def test_unknown_function_raises(self):
        with pytest.raises(InterpreterError):
            interpret_program("var x: int = 0; x := nosuch(1);")

    def test_custom_function_registration(self):
        functions = FunctionRegistry()
        functions.register("double_it", lambda v: v * 2)
        state = interpret_program("var x: int = 0; x := double_it(21);", functions=functions)
        assert state["x"] == 42

    def test_custom_monoid_operator(self):
        monoids = MonoidRegistry()
        monoids.register(argmin_monoid())
        monoids.register(avg_monoid())
        functions = FunctionRegistry()
        source = "var a: double = 0.0; a := ArgMin(1, 3.0) ^ ArgMin(2, 1.0);"
        state = interpret_program(source, functions=functions, monoids=monoids)
        assert state["a"].index == 2

    def test_record_construction_call(self):
        state = interpret_program("var a: double = 0.0; a := ArgMin(3, 1.5);")
        assert state["a"].index == 3
        assert state["a"].distance == 1.5


class TestInterpreterClass:
    def test_run_returns_fresh_state(self):
        interpreter = Interpreter()
        program_state = interpreter.run(
            __import__("repro.loop_lang.parser", fromlist=["parse_program"]).parse_program(
                "var x: int = 1;"
            ),
            {"y": 2},
        )
        assert program_state["x"] == 1
        assert program_state["y"] == 2
