"""Tests for sparse vectors/matrices and tiled (packed) matrices."""

import pytest

from repro.arrays.sparse import SparseMatrix, SparseVector
from repro.arrays.tiles import TiledMatrix, pack_matrix, unpack_tiles
from repro.errors import ExecutionError
from repro.runtime.context import DistributedContext
from repro.workloads.generators import random_matrix


@pytest.fixture
def ctx():
    return DistributedContext(num_partitions=4)


class TestSparseVector:
    def test_from_dict_and_get(self, ctx):
        vector = SparseVector.from_dict(ctx, {0: 1.0, 5: 2.5})
        assert vector.get(5) == 2.5
        assert vector.get(3) == 0.0
        assert vector.nonzero_count() == 2

    def test_from_dense_and_back(self, ctx):
        vector = SparseVector.from_dense(ctx, [1.0, 0.0, 3.0])
        assert vector.to_dense() == [1.0, 0.0, 3.0]
        assert len(vector) == 3

    def test_zeros(self, ctx):
        assert SparseVector.zeros(ctx, 4).to_dense() == [0.0] * 4

    def test_merge_right_wins(self, ctx):
        left = SparseVector.from_dict(ctx, {1: 1.0, 2: 2.0})
        right = SparseVector.from_dict(ctx, {2: 9.0})
        assert left.merge(right).to_dict() == {1: 1.0, 2: 9.0}

    def test_add(self, ctx):
        left = SparseVector.from_dict(ctx, {1: 1.0})
        right = SparseVector.from_dict(ctx, {1: 2.0, 3: 3.0})
        assert left.add(right).to_dict() == {1: 3.0, 3: 3.0}

    def test_dot(self, ctx):
        left = SparseVector.from_dict(ctx, {0: 2.0, 1: 3.0})
        right = SparseVector.from_dict(ctx, {1: 4.0, 2: 5.0})
        assert left.dot(right) == 12.0

    def test_sum_and_map_values(self, ctx):
        vector = SparseVector.from_dict(ctx, {0: 1.0, 1: 2.0})
        assert vector.sum() == 3.0
        assert vector.map_values(lambda v: v * 10).to_dict() == {0: 10.0, 1: 20.0}


class TestSparseMatrix:
    def test_shape_and_get(self, ctx):
        matrix = SparseMatrix.from_dict(ctx, {(0, 0): 1.0, (2, 3): 5.0})
        assert matrix.shape == (3, 4)
        assert matrix.get(2, 3) == 5.0
        assert matrix.get(1, 1) == 0.0

    def test_from_dense_round_trip(self, ctx):
        rows = [[1.0, 2.0], [3.0, 4.0]]
        matrix = SparseMatrix.from_dense(ctx, rows)
        assert matrix.to_dense() == rows

    def test_transpose(self, ctx):
        matrix = SparseMatrix.from_dict(ctx, {(0, 1): 7.0})
        assert matrix.transpose().to_dict() == {(1, 0): 7.0}

    def test_add(self, ctx):
        left = SparseMatrix.from_dict(ctx, {(0, 0): 1.0, (0, 1): 2.0})
        right = SparseMatrix.from_dict(ctx, {(0, 0): 3.0, (1, 1): 4.0})
        assert left.add(right).to_dict() == {(0, 0): 4.0, (0, 1): 2.0, (1, 1): 4.0}

    def test_multiply_matches_numpy(self, ctx):
        numpy = pytest.importorskip("numpy")
        size = 5
        a = random_matrix(size, size, seed=1)
        b = random_matrix(size, size, seed=2)
        product = SparseMatrix.from_dict(ctx, a).multiply(SparseMatrix.from_dict(ctx, b)).to_dict()
        expected = numpy.array([[a[(i, k)] for k in range(size)] for i in range(size)]) @ numpy.array(
            [[b[(k, j)] for j in range(size)] for k in range(size)]
        )
        for i in range(size):
            for j in range(size):
                assert abs(product[(i, j)] - expected[i, j]) < 1e-9

    def test_row_sums(self, ctx):
        matrix = SparseMatrix.from_dict(ctx, {(0, 0): 1.0, (0, 1): 2.0, (1, 0): 5.0})
        assert matrix.row_sums().to_dict() == {0: 3.0, 1: 5.0}

    def test_scale_and_frobenius_error(self, ctx):
        matrix = SparseMatrix.from_dict(ctx, {(0, 0): 2.0})
        scaled = matrix.scale(0.5)
        assert scaled.to_dict() == {(0, 0): 1.0}
        assert matrix.frobenius_error(matrix) == 0.0
        assert matrix.frobenius_error(scaled) == 1.0


class TestTiledMatrix:
    def test_pack_unpack_round_trip(self, ctx):
        entries = random_matrix(10, 7, seed=4)
        sparse = SparseMatrix.from_dict(ctx, entries, shape=(10, 7))
        tiled = pack_matrix(sparse, (10, 7), tile_size=4)
        assert unpack_tiles(tiled).to_dict() == pytest.approx(entries)

    def test_tile_count(self, ctx):
        entries = random_matrix(8, 8, seed=5)
        tiled = TiledMatrix.from_dict(ctx, entries, (8, 8), tile_size=4)
        assert tiled.tile_count() == 4

    def test_tiled_addition_matches_sparse_addition(self, ctx):
        a = random_matrix(9, 9, seed=6)
        b = random_matrix(9, 9, seed=7)
        tiled = TiledMatrix.from_dict(ctx, a, (9, 9), tile_size=4).add(
            TiledMatrix.from_dict(ctx, b, (9, 9), tile_size=4)
        )
        expected = {key: a[key] + b[key] for key in a}
        assert tiled.to_dict() == pytest.approx(expected)

    def test_tile_merge_does_not_shuffle(self, ctx):
        a = TiledMatrix.from_dict(ctx, random_matrix(8, 8, seed=8), (8, 8), tile_size=4)
        b = TiledMatrix.from_dict(ctx, random_matrix(8, 8, seed=9), (8, 8), tile_size=4)
        # Co-partition both sides first, as Section 5 prescribes.  The packing
        # shuffle is lazy, so materialize before resetting the counters: the
        # assertion is about the *merge*, not the tile construction.
        a_ready = TiledMatrix(a.data.partition_by(ctx.hash_partitioner()), a.shape, a.tile_size)
        b_ready = TiledMatrix(b.data.partition_by(ctx.hash_partitioner()), b.shape, b.tile_size)
        a_ready.data.materialize()
        b_ready.data.materialize()
        ctx.metrics.reset()
        a_ready.merge_tiles(b_ready, lambda x, y: x + y)
        assert ctx.metrics.shuffles == 0

    def test_tiled_multiplication_matches_sparse(self, ctx):
        numpy = pytest.importorskip("numpy")
        size = 8
        a = random_matrix(size, size, seed=10)
        b = random_matrix(size, size, seed=11)
        tiled_product = (
            TiledMatrix.from_dict(ctx, a, (size, size), tile_size=4)
            .multiply(TiledMatrix.from_dict(ctx, b, (size, size), tile_size=4))
            .to_dict()
        )
        expected = numpy.array([[a[(i, k)] for k in range(size)] for i in range(size)]) @ numpy.array(
            [[b[(k, j)] for j in range(size)] for k in range(size)]
        )
        for i in range(size):
            for j in range(size):
                assert abs(tiled_product.get((i, j), 0.0) - expected[i, j]) < 1e-9

    def test_map_values(self, ctx):
        tiled = TiledMatrix.from_dict(ctx, {(0, 0): 2.0}, (1, 1), tile_size=2)
        assert tiled.map_values(lambda v: v * 3).to_dict() == {(0, 0): 6.0}

    def test_mismatched_tile_sizes_rejected(self, ctx):
        a = TiledMatrix.from_dict(ctx, {(0, 0): 1.0}, (1, 1), tile_size=2)
        b = TiledMatrix.from_dict(ctx, {(0, 0): 1.0}, (1, 1), tile_size=4)
        with pytest.raises(ExecutionError):
            a.add(b)
        with pytest.raises(ExecutionError):
            a.multiply(b)
