"""Unit tests for the cluster wire protocol and the closure-capable pickler.

These run without any worker processes: framing is exercised over
``socket.socketpair`` and serialization round-trips happen in-process.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.runtime.cluster import protocol, wire

# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_round_trip(self, pair):
        left, right = pair
        payload = {"numbers": list(range(50)), "nested": {"a": (1, 2)}}
        protocol.send_message(left, protocol.RUN_TASKS, payload)
        message_type, received = protocol.recv_message(right)
        assert message_type == protocol.RUN_TASKS
        assert received == payload

    def test_multiple_frames_stay_delimited(self, pair):
        left, right = pair
        for index in range(5):
            protocol.send_message(left, protocol.HEARTBEAT, {"index": index})
        for index in range(5):
            message_type, received = protocol.recv_message(right)
            assert message_type == protocol.HEARTBEAT
            assert received == {"index": index}

    def test_sized_receive_reports_full_frame_bytes(self, pair):
        left, right = pair
        frame = protocol.encode_message(protocol.PAYLOAD, {"records": [1, 2, 3]})
        protocol.send_frame(left, frame)
        _, _, frame_bytes = protocol.recv_message_sized(right)
        assert frame_bytes == len(frame)

    def test_bad_magic_rejected(self, pair):
        left, right = pair
        frame = protocol.encode_message(protocol.HEARTBEAT, {})
        left.sendall(b"EVIL" + frame[4:])
        with pytest.raises(protocol.ProtocolError, match="magic"):
            protocol.recv_message(right)

    def test_version_mismatch_rejected(self, pair):
        left, right = pair
        frame = bytearray(protocol.encode_message(protocol.HEARTBEAT, {}))
        frame[4] = protocol.PROTOCOL_VERSION + 1
        left.sendall(bytes(frame))
        with pytest.raises(protocol.ProtocolError, match="version mismatch"):
            protocol.recv_message(right)

    def test_truncated_frame_is_a_protocol_error(self, pair):
        left, right = pair
        frame = protocol.encode_message(protocol.RUN_TASKS, {"data": list(range(100))})
        left.sendall(frame[: len(frame) - 10])
        left.close()
        with pytest.raises(protocol.ProtocolError, match="truncated"):
            protocol.recv_message(right)

    def test_clean_close_between_frames_is_connection_closed(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(protocol.ConnectionClosed):
            protocol.recv_message(right)
        # ConnectionClosed specializes ProtocolError so generic handlers work.
        assert issubclass(protocol.ConnectionClosed, protocol.ProtocolError)

    def test_oversized_header_length_rejected(self, pair):
        left, right = pair
        header = struct.Struct(">4sB3xQ").pack(
            protocol.MAGIC, protocol.PROTOCOL_VERSION, protocol.MAX_FRAME_BYTES + 1
        )
        left.sendall(header)
        with pytest.raises(protocol.ProtocolError, match="cap"):
            protocol.recv_message(right)

    def test_oversized_body_rejected_at_encode_time(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 8)
        with pytest.raises(protocol.ProtocolError, match="cap"):
            protocol.encode_message(protocol.RUN_TASKS, {"data": list(range(100))})

    def test_undecodable_body_is_a_protocol_error(self, pair):
        left, right = pair
        body = b"this is not a pickle"
        header = struct.Struct(">4sB3xQ").pack(
            protocol.MAGIC, protocol.PROTOCOL_VERSION, len(body)
        )
        left.sendall(header + body)
        with pytest.raises(protocol.ProtocolError, match="undecodable"):
            protocol.recv_message(right)


class TestAddresses:
    def test_parse_and_format_round_trip(self):
        assert protocol.parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert protocol.format_address(("10.0.0.2", 81)) == "10.0.0.2:81"

    def test_parse_rejects_portless_addresses(self):
        with pytest.raises(ValueError):
            protocol.parse_address("localhost")
        with pytest.raises(ValueError):
            protocol.parse_address(":9000")


# ---------------------------------------------------------------------------
# The closure-capable pickler
# ---------------------------------------------------------------------------


_MODULE_CONSTANT = 17


def _module_function(x):
    return x + _MODULE_CONSTANT


class TestWireSerialization:
    def round_trip(self, obj):
        return wire.cluster_loads(wire.cluster_dumps(obj))

    def test_plain_data_round_trips(self):
        value = {"k": [1, 2.5, "three", (4, None)]}
        assert self.round_trip(value) == value

    def test_codebase_function_ships_by_reference(self):
        from repro.runtime.stage import pair_key

        assert self.round_trip(pair_key) is pair_key

    def test_test_module_function_ships_by_value(self):
        # Functions importable only through the driver's extra sys.path
        # entries (like this test module) must NOT go by reference: a worker
        # cannot import them.
        fn = self.round_trip(_module_function)
        assert fn is not _module_function
        assert fn(3) == 20

    def test_lambda_ships_by_value(self):
        fn = self.round_trip(lambda x: x * 3)
        assert fn(7) == 21

    def test_closure_cells_survive(self):
        offset = 40

        def shifted(x):
            return x + offset

        fn = self.round_trip(shifted)
        assert fn(2) == 42

    def test_defaults_and_kwdefaults_survive(self):
        def combine(a, b=10, *, c=100):
            return a + b + c

        fn = self.round_trip(combine)
        assert fn(1) == 111
        assert fn(1, 2, c=3) == 6

    def test_recursive_closure_survives(self):
        def factorial(n):
            return 1 if n <= 1 else n * factorial(n - 1)

        fn = self.round_trip(factorial)
        assert fn(5) == 120

    def test_local_function_reads_module_globals_after_shipping(self):
        def uses_global(x):
            return _module_function(x)

        fn = self.round_trip(uses_global)
        assert fn(3) == 20

    def test_function_from_unimportable_module_gets_isolated_globals(self):
        namespace = {"__name__": "__diablo_wire_test_fake__", "OFFSET": 5}
        exec("def shifted(x):\n    return x + OFFSET\n", namespace)
        fn = self.round_trip(namespace["shifted"])
        assert fn(2) == 7
        assert wire._ISOLATED_GLOBALS_MARKER in fn.__globals__

    def test_unpicklable_graph_raises_unshippable(self):
        with pytest.raises(wire.UnshippableError):
            wire.cluster_dumps({"lock": threading.Lock()})

    def test_context_ships_as_inert_stub(self):
        from repro.runtime.context import DistributedContext

        ctx = DistributedContext(num_partitions=2)
        try:
            stub = self.round_trip({"ctx": ctx})["ctx"]
        finally:
            ctx.shutdown()
        with pytest.raises(wire.DriverOnlyError, match="driver-only"):
            stub.num_partitions
        with pytest.raises(wire.DriverOnlyError):
            stub()

    def test_dataset_reachable_from_closure_becomes_stub(self):
        from repro.runtime.context import DistributedContext

        ctx = DistributedContext(num_partitions=2)
        try:
            ds = ctx.parallelize(range(4))

            def leaky(x):
                return (x, ds)

            fn = self.round_trip(leaky)
        finally:
            ctx.shutdown()
        _, stub = fn(1)
        with pytest.raises(wire.DriverOnlyError):
            stub.collect()

    def test_deeply_nested_closures_ship(self):
        def wrap(fn):
            def wrapped(x):
                return fn(x) + 1

            return wrapped

        chain = lambda x: x  # noqa: E731 - deliberately non-importable
        for _ in range(300):
            chain = wrap(chain)
        fn = self.round_trip(chain)
        assert fn(0) == 300


# ---------------------------------------------------------------------------
# Columnar kernels over the wire
# ---------------------------------------------------------------------------


class _Env:
    """A driver-side environment whose scalars mutate between forces."""

    def __init__(self):
        self.values = {"threshold": 2}

    def current(self):
        return self.values


class TestColumnarWireSerialization:
    """Vectorized plan functions must survive the trip to a cluster worker.

    The kernel classes live in the ``repro.*`` codebase so they ship by
    reference; what needs regression coverage is a :class:`ScalarScope`
    carrying *captures* -- a ``values_provider`` bound to a driver object.
    That provider ships by value (a worker cannot import driver state), so
    the clone must keep resolving names against the shipped snapshot.
    """

    def round_trip(self, obj):
        return wire.cluster_loads(wire.cluster_dumps(obj))

    def test_kernel_classes_ship_by_reference(self):
        from repro.runtime import columnar

        assert self.round_trip(columnar.VectorizedFilter) is columnar.VectorizedFilter
        assert self.round_trip(columnar.VectorizedFlatMap) is columnar.VectorizedFlatMap
        assert self.round_trip(columnar.ColumnarPartition) is columnar.ColumnarPartition

    def test_capture_bearing_scalar_scope_survives(self):
        from repro.runtime import columnar

        env = _Env()
        scope = columnar.ScalarScope(values_provider=env.current)
        predicate = columnar.BinOp(">", columnar.Col((0,)), columnar.Ref("threshold"))
        fn = columnar.VectorizedFilter(predicate, scope, oracle=None)

        clone = self.round_trip(fn)
        assert type(clone) is columnar.VectorizedFilter
        assert clone.scope.resolve("threshold") == 2

        part = columnar.ColumnarPartition.from_records([(i, float(i)) for i in range(6)])
        filtered = clone.apply_batch(part).to_records()
        assert filtered == [(3, 3.0), (4, 4.0), (5, 5.0)]
        # The record path of the clone agrees with the batch path.
        assert [p for p in part.to_records() if clone(p)] == filtered

    def test_shipped_provider_is_a_snapshot_not_a_live_link(self):
        from repro.runtime import columnar

        env = _Env()
        scope = columnar.ScalarScope(values_provider=env.current)
        clone = self.round_trip(scope)
        env.values["threshold"] = 99  # driver-side mutation after shipping
        assert clone.resolve("threshold") == 2

    def test_vectorized_flat_map_spec_round_trips(self):
        from repro.runtime import columnar

        fn = columnar.VectorizedFlatMap(
            ("extend", ("w",), ((columnar.Lit(1),), (columnar.Lit(2),))),
            oracle=None,
        )
        clone = self.round_trip(fn)
        part = columnar.ColumnarPartition.from_records([{"i": 0}, {"i": 1}])
        assert clone.apply_batch(part).to_records() == [
            {"i": 0, "w": 1},
            {"i": 0, "w": 2},
            {"i": 1, "w": 1},
            {"i": 1, "w": 2},
        ]
