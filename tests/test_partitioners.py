"""Partitioner semantics: equality/hashing, metadata preservation through
every narrow operator, placement no-ops and co-partitioning errors.

The partition-aware planner (PR 5) keys every shuffle-elimination decision on
``Partitioner.__eq__``, so these semantics are load-bearing: a false positive
would silently mis-bucket keys, a false negative would only cost a shuffle.
"""

from collections import Counter

import pytest

from repro.errors import ExecutionError
from repro.runtime.context import DistributedContext
from repro.runtime.partitioner import HashPartitioner, Partitioner, RangePartitioner, stable_hash
from repro.runtime.stage import SaltedKey
from repro.workloads import zipf_keys


@pytest.fixture
def ctx():
    return DistributedContext(num_partitions=4)


class TestPartitionerEquality:
    def test_hash_partitioners_equal_on_num_partitions(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert hash(HashPartitioner(4)) == hash(HashPartitioner(4))
        assert HashPartitioner(4) != HashPartitioner(8)

    def test_hash_vs_range_never_equal(self):
        # Same partition count, different placement function: treating these
        # as interchangeable would route keys to the wrong buckets.
        assert HashPartitioner(3) != RangePartitioner(3, [10, 20])
        assert RangePartitioner(3, [10, 20]) != HashPartitioner(3)

    def test_range_partitioners_compare_bounds(self):
        assert RangePartitioner(3, [10, 20]) == RangePartitioner(3, [10, 20])
        assert hash(RangePartitioner(3, [10, 20])) == hash(RangePartitioner(3, [10, 20]))
        assert RangePartitioner(3, [10, 20]) != RangePartitioner(3, [10, 30])

    def test_range_partitioners_compare_num_partitions(self):
        assert RangePartitioner(3, [10, 20]) != RangePartitioner(4, [10, 20, 30])

    def test_base_class_equality_is_type_strict(self):
        assert Partitioner(4) != HashPartitioner(4)

    def test_invalid_partitioners_rejected(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)
        with pytest.raises(ValueError):
            RangePartitioner(3, [10])  # needs num_partitions - 1 bounds


class TestPartitionerPreservation:
    """Which narrow operators may keep partitioner metadata.

    Key-preserving operators (filter / map_values / sample) keep it; anything
    that can rewrite the record (map / flat_map / map_partitions) must drop
    it unless the caller promises key stability via
    ``preserves_partitioning=True``.
    """

    def _placed(self, ctx):
        return ctx.parallelize([(i, i) for i in range(40)]).partition_by(HashPartitioner(4))

    def test_filter_preserves(self, ctx):
        placed = self._placed(ctx)
        assert placed.filter(lambda p: p[0] > 3).partitioner == HashPartitioner(4)

    def test_map_values_preserves(self, ctx):
        placed = self._placed(ctx)
        assert placed.map_values(lambda v: v + 1).partitioner == HashPartitioner(4)

    def test_sample_preserves(self, ctx):
        placed = self._placed(ctx)
        assert placed.sample(0.5).partitioner == HashPartitioner(4)

    def test_map_drops_by_default(self, ctx):
        placed = self._placed(ctx)
        assert placed.map(lambda p: p).partitioner is None

    def test_flat_map_drops_by_default(self, ctx):
        placed = self._placed(ctx)
        assert placed.flat_map(lambda p: [p]).partitioner is None

    def test_map_partitions_drops(self, ctx):
        placed = self._placed(ctx)
        assert placed.map_partitions(lambda records: records).partitioner is None

    def test_map_with_preserves_partitioning_keeps(self, ctx):
        placed = self._placed(ctx)
        kept = placed.map(lambda p: (p[0], p[1] * 2), preserves_partitioning=True)
        assert kept.partitioner == HashPartitioner(4)

    def test_flat_map_with_preserves_partitioning_keeps(self, ctx):
        placed = self._placed(ctx)
        kept = placed.flat_map(lambda p: [(p[0], v) for v in range(2)], preserves_partitioning=True)
        assert kept.partitioner == HashPartitioner(4)

    def test_preservation_survives_forcing(self, ctx):
        placed = self._placed(ctx)
        chain = placed.filter(lambda p: True).map_values(lambda v: v).sample(0.9)
        chain.materialize()
        assert chain.partitioner == HashPartitioner(4)

    def test_merge_preserves_the_cogroup_partitioner(self, ctx):
        left = ctx.parallelize([(1, "a"), (2, "b")])
        right = ctx.parallelize([(2, "B"), (3, "C")])
        merged = left.merge(right).materialize()
        assert merged.partitioner == HashPartitioner(ctx.num_partitions)
        assert merged.collect_as_map() == {1: "a", 2: "B", 3: "C"}


class TestPlacement:
    def test_partition_by_is_a_no_op_when_already_placed(self, ctx):
        placed = ctx.parallelize([(i, i) for i in range(20)]).partition_by(HashPartitioner(4))
        ctx.metrics.reset()
        again = placed.partition_by(HashPartitioner(4))
        assert again is placed, "re-placing with an equal partitioner must be free"
        assert ctx.metrics.shuffles == 0

    def test_partition_by_with_a_different_partitioner_shuffles(self, ctx):
        placed = ctx.parallelize([(i, i) for i in range(20)]).partition_by(HashPartitioner(4))
        ctx.metrics.reset()
        replaced = placed.partition_by(HashPartitioner(2))
        assert replaced.partitioner == HashPartitioner(2)
        assert ctx.metrics.shuffles == 1

    def test_partition_by_groups_keys_per_partition(self, ctx):
        placed = ctx.parallelize([(i % 8, i) for i in range(64)]).partition_by(HashPartitioner(4))
        partitioner = placed.partitioner
        for index, partition in enumerate(placed.partitions):
            for key, _value in partition:
                assert partitioner.partition(key) == index

    def test_zip_partitions_partition_count_mismatch_raises(self, ctx):
        left = ctx.parallelize(range(10), num_partitions=4)
        right = ctx.parallelize(range(10), num_partitions=3)
        with pytest.raises(ExecutionError, match="same number of partitions"):
            left.zip_partitions(right, lambda a, b: a + b)


class TestSkewAwarePartitioning:
    """Range bounds from skewed samples, and hot-key salting (PR 7).

    Under a Zipf key distribution, split points taken from *distinct* keys
    would pack the hot head range into one partition; both ``from_sample``
    (duplicates in the raw sample carry the frequency) and ``from_histogram``
    (explicit counts) must spread the load instead.
    """

    ZIPF_KEYS = 1_000
    ZIPF_DRAWS = 4_000

    def _balance(self, partitioner: RangePartitioner, keys: list[int]) -> list[int]:
        counts = [0] * partitioner.num_partitions
        for key in keys:
            counts[partitioner.partition(key)] += 1
        return counts

    def test_from_sample_balances_zipf_keys(self):
        keys = zipf_keys(self.ZIPF_DRAWS, self.ZIPF_KEYS, seed=101)
        partitioner = RangePartitioner.from_sample(4, keys)
        counts = self._balance(partitioner, keys)
        assert partitioner.num_partitions >= 2
        assert all(count > 0 for count in counts), "a partition went empty"
        # The hottest key (~1/5 of the mass) cannot be split, so perfect 25%
        # quarters are unreachable -- but no partition may own a majority.
        assert max(counts) < len(keys) // 2, f"skewed split: {counts}"

    def test_from_histogram_balances_zipf_keys(self):
        keys = zipf_keys(self.ZIPF_DRAWS, self.ZIPF_KEYS, seed=103)
        histogram = sorted(Counter(keys).items())
        partitioner = RangePartitioner.from_histogram(4, histogram)
        counts = self._balance(partitioner, keys)
        assert partitioner.num_partitions >= 2
        assert all(count > 0 for count in counts), "a partition went empty"
        assert max(counts) < len(keys) // 2, f"skewed split: {counts}"

    def test_from_histogram_matches_from_sample_on_exact_counts(self):
        # A histogram with the sample's exact multiplicities must induce the
        # same frequency-weighted quantiles as the raw sample itself.
        keys = zipf_keys(500, 40, seed=107)
        by_sample = RangePartitioner.from_sample(4, keys)
        by_histogram = RangePartitioner.from_histogram(4, sorted(Counter(keys).items()))
        assert self._balance(by_histogram, keys) == pytest.approx(
            self._balance(by_sample, keys), rel=0.25
        )

    def test_salted_keys_hash_stably_and_spread(self):
        key = "hot-key"
        salted = [SaltedKey(key, salt) for salt in range(8)]
        # Tuple subclass: stable_hash's tuple branch covers it, and the value
        # is reproducible (no per-process str-hash randomization leaks in).
        for record in salted:
            assert stable_hash(record) == stable_hash(SaltedKey(key, record.salt))
        partitions = {HashPartitioner(4).partition(record) for record in salted}
        assert len(partitions) > 1, "salting failed to spread the hot key"

    def test_salted_reduce_matches_unsalted_exactly(self):
        # Non-commutative fold: exactness requires the driver to fold salted
        # partials back in map-task order, so string concatenation is the
        # sharpest probe (floats would hide reordering in associativity).
        records = [("hot", str(index)) for index in range(400)]
        records += [(f"cold-{index}", "x") for index in range(40)]
        concat = lambda a, b: a + b  # noqa: E731
        with DistributedContext(num_partitions=4, adaptive=False) as context:
            expected = dict(context.parallelize(records).reduce_by_key(concat).collect())
        with DistributedContext(num_partitions=4, adaptive=True) as context:
            actual = dict(context.parallelize(records).reduce_by_key(concat).collect())
            assert context.metrics.salted_keys > 0, "the hot key was not salted"
        assert actual == expected
