"""Partitioner semantics: equality/hashing, metadata preservation through
every narrow operator, placement no-ops and co-partitioning errors.

The partition-aware planner (PR 5) keys every shuffle-elimination decision on
``Partitioner.__eq__``, so these semantics are load-bearing: a false positive
would silently mis-bucket keys, a false negative would only cost a shuffle.
"""

import pytest

from repro.errors import ExecutionError
from repro.runtime.context import DistributedContext
from repro.runtime.partitioner import HashPartitioner, Partitioner, RangePartitioner


@pytest.fixture
def ctx():
    return DistributedContext(num_partitions=4)


class TestPartitionerEquality:
    def test_hash_partitioners_equal_on_num_partitions(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert hash(HashPartitioner(4)) == hash(HashPartitioner(4))
        assert HashPartitioner(4) != HashPartitioner(8)

    def test_hash_vs_range_never_equal(self):
        # Same partition count, different placement function: treating these
        # as interchangeable would route keys to the wrong buckets.
        assert HashPartitioner(3) != RangePartitioner(3, [10, 20])
        assert RangePartitioner(3, [10, 20]) != HashPartitioner(3)

    def test_range_partitioners_compare_bounds(self):
        assert RangePartitioner(3, [10, 20]) == RangePartitioner(3, [10, 20])
        assert hash(RangePartitioner(3, [10, 20])) == hash(RangePartitioner(3, [10, 20]))
        assert RangePartitioner(3, [10, 20]) != RangePartitioner(3, [10, 30])

    def test_range_partitioners_compare_num_partitions(self):
        assert RangePartitioner(3, [10, 20]) != RangePartitioner(4, [10, 20, 30])

    def test_base_class_equality_is_type_strict(self):
        assert Partitioner(4) != HashPartitioner(4)

    def test_invalid_partitioners_rejected(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)
        with pytest.raises(ValueError):
            RangePartitioner(3, [10])  # needs num_partitions - 1 bounds


class TestPartitionerPreservation:
    """Which narrow operators may keep partitioner metadata.

    Key-preserving operators (filter / map_values / sample) keep it; anything
    that can rewrite the record (map / flat_map / map_partitions) must drop
    it unless the caller promises key stability via
    ``preserves_partitioning=True``.
    """

    def _placed(self, ctx):
        return ctx.parallelize([(i, i) for i in range(40)]).partition_by(HashPartitioner(4))

    def test_filter_preserves(self, ctx):
        placed = self._placed(ctx)
        assert placed.filter(lambda p: p[0] > 3).partitioner == HashPartitioner(4)

    def test_map_values_preserves(self, ctx):
        placed = self._placed(ctx)
        assert placed.map_values(lambda v: v + 1).partitioner == HashPartitioner(4)

    def test_sample_preserves(self, ctx):
        placed = self._placed(ctx)
        assert placed.sample(0.5).partitioner == HashPartitioner(4)

    def test_map_drops_by_default(self, ctx):
        placed = self._placed(ctx)
        assert placed.map(lambda p: p).partitioner is None

    def test_flat_map_drops_by_default(self, ctx):
        placed = self._placed(ctx)
        assert placed.flat_map(lambda p: [p]).partitioner is None

    def test_map_partitions_drops(self, ctx):
        placed = self._placed(ctx)
        assert placed.map_partitions(lambda records: records).partitioner is None

    def test_map_with_preserves_partitioning_keeps(self, ctx):
        placed = self._placed(ctx)
        kept = placed.map(lambda p: (p[0], p[1] * 2), preserves_partitioning=True)
        assert kept.partitioner == HashPartitioner(4)

    def test_flat_map_with_preserves_partitioning_keeps(self, ctx):
        placed = self._placed(ctx)
        kept = placed.flat_map(lambda p: [(p[0], v) for v in range(2)], preserves_partitioning=True)
        assert kept.partitioner == HashPartitioner(4)

    def test_preservation_survives_forcing(self, ctx):
        placed = self._placed(ctx)
        chain = placed.filter(lambda p: True).map_values(lambda v: v).sample(0.9)
        chain.materialize()
        assert chain.partitioner == HashPartitioner(4)

    def test_merge_preserves_the_cogroup_partitioner(self, ctx):
        left = ctx.parallelize([(1, "a"), (2, "b")])
        right = ctx.parallelize([(2, "B"), (3, "C")])
        merged = left.merge(right).materialize()
        assert merged.partitioner == HashPartitioner(ctx.num_partitions)
        assert merged.collect_as_map() == {1: "a", 2: "B", 3: "C"}


class TestPlacement:
    def test_partition_by_is_a_no_op_when_already_placed(self, ctx):
        placed = ctx.parallelize([(i, i) for i in range(20)]).partition_by(HashPartitioner(4))
        ctx.metrics.reset()
        again = placed.partition_by(HashPartitioner(4))
        assert again is placed, "re-placing with an equal partitioner must be free"
        assert ctx.metrics.shuffles == 0

    def test_partition_by_with_a_different_partitioner_shuffles(self, ctx):
        placed = ctx.parallelize([(i, i) for i in range(20)]).partition_by(HashPartitioner(4))
        ctx.metrics.reset()
        replaced = placed.partition_by(HashPartitioner(2))
        assert replaced.partitioner == HashPartitioner(2)
        assert ctx.metrics.shuffles == 1

    def test_partition_by_groups_keys_per_partition(self, ctx):
        placed = ctx.parallelize([(i % 8, i) for i in range(64)]).partition_by(HashPartitioner(4))
        partitioner = placed.partitioner
        for index, partition in enumerate(placed.partitions):
            for key, _value in partition:
                assert partitioner.partition(key) == index

    def test_zip_partitions_partition_count_mismatch_raises(self, ctx):
        left = ctx.parallelize(range(10), num_partitions=4)
        right = ctx.parallelize(range(10), num_partitions=3)
        with pytest.raises(ExecutionError, match="same number of partitions"):
            left.zip_partitions(right, lambda a, b: a + b)
