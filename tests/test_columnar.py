"""Differential oracle suite for columnar vectorized execution.

The record-at-a-time path is the correctness oracle: with ``columnar=True``
every Figure 3 workload must produce **bit-identical** outputs under every
executor mode (including the harshest spill setting), because batch kernels
either reproduce the record semantics exactly or fall back per partition.

Kernel-level tests pin down the exactness guards one by one: Python-int
overflow, bool arithmetic, NaN/negative-zero folds, mixed-type comparisons,
the no-numpy list backend and the per-partition record-path replay.
"""

from __future__ import annotations

import functools
import math
import pickle

import pytest

from test_executor_equivalence import (
    SIZES,
    SPILLING_PROGRAMS,
    TINY_SPILL,
    _Outputs,
    interpreter_outputs,
    workload,
)
from test_soundness_programs import assert_same_outputs

from repro.algebra.explain import explain_metrics
from repro.api import config as config_mod
from repro.evaluation.harness import diablo_for, translated_outputs
from repro.programs import get_program, table2_program_names
from repro.runtime import columnar
from repro.runtime import stage as stage_mod
from repro.runtime.context import EXECUTOR_MODES, DistributedContext


def run_columnar(name: str, mode: str, spill_threshold_bytes: int | None = None) -> tuple:
    """One Figure 3 workload under ``columnar=True``; outputs + metric pair."""
    spec = get_program(name)
    with DistributedContext(
        num_partitions=4,
        executor=mode,
        spill_threshold_bytes=spill_threshold_bytes,
        columnar=True,
    ) as context:
        diablo = diablo_for(spec, context)
        result = diablo.compile(spec.source).run(**workload(name))
        outputs = translated_outputs(name, result)
        metrics = context.metrics
        return outputs, (metrics.vectorized_stages, metrics.columnar_fallbacks)


@functools.lru_cache(maxsize=None)
def record_path_outputs(name: str) -> dict:
    """The record-at-a-time oracle (``columnar=False``), once per program."""
    spec = get_program(name)
    with DistributedContext(num_partitions=4, columnar=False) as context:
        diablo = diablo_for(spec, context)
        result = diablo.compile(spec.source).run(**workload(name))
        assert context.metrics.vectorized_stages == 0, "columnar=False must not vectorize"
        return translated_outputs(name, result)


@pytest.mark.parametrize("mode", EXECUTOR_MODES)
@pytest.mark.parametrize("name", table2_program_names())
def test_every_figure3_workload_is_bit_identical_under_columnar(name, mode):
    """columnar=True == columnar=False == interpreter, per program and mode."""
    outputs, _counters = run_columnar(name, mode)
    assert outputs == record_path_outputs(name), (
        f"{name} under {mode!r}: columnar results differ from the record path"
    )
    assert_same_outputs(get_program(name), _Outputs(outputs), interpreter_outputs(name))


@pytest.mark.parametrize("name", SPILLING_PROGRAMS)
def test_figure3_wide_workloads_spilled_columnar_match_record_path(name):
    outputs, _counters = run_columnar(name, "sequential", spill_threshold_bytes=TINY_SPILL)
    assert outputs == record_path_outputs(name)


def test_numeric_workloads_actually_vectorize():
    """The batch path must engage (not silently fall back everywhere)."""
    for name in ("conditional_sum", "histogram", "group_by"):
        _outputs, (vectorized, _fallbacks) = run_columnar(name, "sequential")
        assert vectorized > 0, f"{name}: no stage took the batch path"


def test_columnar_metrics_identical_across_executors():
    """Vectorization counters are plan properties, not executor properties."""
    per_mode = {}
    for mode in EXECUTOR_MODES:
        _outputs, counters = run_columnar("conditional_sum", mode)
        per_mode[mode] = counters
    assert per_mode["sequential"] == per_mode["threads"] == per_mode["processes"]


# ---------------------------------------------------------------------------
# ColumnarPartition: construction, reassembly, pickling
# ---------------------------------------------------------------------------


class TestColumnarPartition:
    def test_round_trips_scalars_pairs_and_dicts(self):
        for records in (
            [1, 2, 3],
            [1.5, -0.25, 3.0],
            ["a", "bb", "ccc"],
            [True, False, True],
            [(0, 1.0), (1, 2.0)],
            [((0, 1), 2.5), ((3, 4), -1.5)],
            [{"i": 1, "v": 2.0}, {"i": 3, "v": 4.0}],
        ):
            part = columnar.ColumnarPartition.from_records(records)
            assert part is not None, records
            out = part.to_records()
            assert out == records
            assert [type(a) for a in out] == [type(b) for b in records]

    def test_rejects_ragged_mixed_and_empty_input(self):
        assert columnar.ColumnarPartition.from_records([]) is None
        assert columnar.ColumnarPartition.from_records([(1, 2), (1, 2, 3)]) is None
        assert columnar.ColumnarPartition.from_records([1, "x"]) is None
        assert columnar.ColumnarPartition.from_records([1, 2.0]) is None
        assert columnar.ColumnarPartition.from_records([None, None]) is None
        assert columnar.ColumnarPartition.from_records([[1], [2]]) is None

    def test_rejects_ints_beyond_int64(self):
        assert columnar.ColumnarPartition.from_records([2**70, 1]) is None

    def test_pickles_across_the_process_boundary(self):
        records = [(i, float(i) / 2) for i in range(10)]
        part = columnar.ColumnarPartition.from_records(records)
        clone = pickle.loads(pickle.dumps(part))
        assert clone.to_records() == records

    def test_compress_keeps_python_types(self):
        part = columnar.ColumnarPartition.from_records([(i, i * 2) for i in range(6)])
        if columnar.np is not None:
            mask = columnar.np.array([True, False] * 3)
        else:
            mask = [True, False] * 3
        kept = part.compress(mask).to_records()
        assert kept == [(0, 0), (2, 4), (4, 8)]
        assert all(type(k) is int and type(v) is int for k, v in kept)


# ---------------------------------------------------------------------------
# Batch kernels vs. the record path, per stage kind
# ---------------------------------------------------------------------------


def _run_both(chain, records):
    """One fused chain under both paths; they must agree exactly."""
    record_path = stage_mod.compose(list(chain))(list(records), 0)
    batch_path = stage_mod.compose(list(chain), columnar=True)(list(records), 0)
    assert batch_path == record_path
    assert [type(r) for r in batch_path] == [type(r) for r in record_path]
    return batch_path


def _pair_scope():
    return columnar.ScalarScope({"lo": 2, "scale": 10})


def _filter_stage():
    predicate = columnar.BinOp(">", columnar.Col((0,)), columnar.Ref("lo"))
    return stage_mod.NarrowStage(
        stage_mod.FILTER,
        columnar.VectorizedFilter(predicate, _pair_scope(), oracle=lambda p: p[0] > 2),
    )


class TestBatchKernels:
    def test_map_filter_map_values_chain(self):
        out = columnar.OutTuple(
            [
                columnar.Col((0,)),
                columnar.BinOp("*", columnar.Col((1,)), columnar.Ref("scale")),
            ]
        )
        chain = [
            _filter_stage(),
            stage_mod.NarrowStage(
                stage_mod.MAP,
                columnar.VectorizedMap(
                    out, _pair_scope(), oracle=lambda p: (p[0], p[1] * 10)
                ),
            ),
            stage_mod.NarrowStage(
                stage_mod.MAP_VALUES,
                columnar.VectorizedMapValues(
                    columnar.BinOp("-", columnar.Col(()), columnar.Lit(1)),
                    columnar.ScalarScope(),
                    oracle=lambda v: v - 1,
                ),
            ),
        ]
        records = [(i, i + 1) for i in range(20)]
        result = _run_both(chain, records)
        assert result == [(i, (i + 1) * 10 - 1) for i in range(20) if i > 2]

    def test_bind_reroots_elements_into_rows(self):
        bind = columnar.VectorizedBind(
            ("tuple", (("var", "i"), ("var", "v"))),
            oracle=lambda pair: {"i": pair[0], "v": pair[1]},
        )
        chain = [stage_mod.NarrowStage(stage_mod.MAP, bind)]
        records = [(i, float(i)) for i in range(8)]
        assert _run_both(chain, records) == [{"i": i, "v": float(i)} for i in range(8)]

    def test_vectorized_functions_delegate_to_the_oracle_record_by_record(self):
        calls = []

        def oracle(p):
            calls.append(p)
            return p[0] > 2

        predicate = columnar.BinOp(">", columnar.Col((0,)), columnar.Lit(2))
        fn = columnar.VectorizedFilter(predicate, columnar.ScalarScope(), oracle=oracle)
        assert fn((5, "x")) is True
        assert calls == [(5, "x")], "__call__ must be the original closure, verbatim"

    def test_undefined_ref_falls_back_to_records(self):
        predicate = columnar.BinOp(">", columnar.Col((0,)), columnar.Ref("missing"))
        stage = stage_mod.NarrowStage(
            stage_mod.FILTER,
            columnar.VectorizedFilter(predicate, columnar.ScalarScope(), oracle=lambda p: True),
        )
        records = [(i, i) for i in range(5)]
        # Batch raises inside the kernel -> per-partition replay via the oracle.
        assert stage_mod.compose([stage], columnar=True)(records, 0) == records


# ---------------------------------------------------------------------------
# Exactness guards: every divergence hazard must take the record path
# ---------------------------------------------------------------------------


class TestExactnessGuards:
    def _both(self, op, left_values, right):
        """batch_binop vs. per-record apply_binary over a real column."""
        part = columnar.ColumnarPartition.from_records(list(left_values))
        assert part is not None
        left = part.leaf(())
        return left, right

    def test_large_int_arithmetic_falls_back(self):
        big = 2**40
        left, right = self._both("+", [big, big + 1], 1)
        with pytest.raises(columnar.ColumnarFallback):
            columnar.batch_binop("+", left, right, 2)

    def test_bool_arithmetic_falls_back(self):
        left, right = self._both("+", [True, False], 1)
        with pytest.raises(columnar.ColumnarFallback):
            columnar.batch_binop("+", left, right, 2)

    def test_mixed_str_number_comparison_falls_back(self):
        left, right = self._both("<", ["a", "b"], 3)
        with pytest.raises(columnar.ColumnarFallback):
            columnar.batch_binop("<", left, right, 2)

    def test_small_int_arithmetic_matches_python(self):
        left, right = self._both("*", [3, -4, 0], 7)
        result = columnar.batch_binop("*", left, right, 3)
        assert columnar._column_list(result) == [21, -28, 0]

    def test_division_is_never_vectorized(self):
        assert "/" not in columnar.SUPPORTED_BINOPS
        assert "%" not in columnar.SUPPORTED_BINOPS


def _sum_combine(a, b):
    return a + b


def _min_combine(a, b):
    return min(a, b)


class TestCombinerKernels:
    def _records(self):
        return [(i % 5, float(i)) for i in range(40)]

    def test_reduce_combiner_matches_record_path(self):
        for op, fn in (("+", _sum_combine), ("min", _min_combine)):
            combiner = ("reduce", columnar.VectorizedCombine(op, fn))
            records = self._records()
            batch = stage_mod.apply_combiner(combiner, list(records), columnar=True)
            record = stage_mod.apply_combiner(combiner, list(records), columnar=False)
            assert batch == record, op

    def test_seq_combiner_matches_record_path(self):
        combiner = ("seq", 0.0, columnar.VectorizedCombine("+", _sum_combine))
        records = self._records()
        batch = stage_mod.apply_combiner(combiner, list(records), columnar=True)
        record = stage_mod.apply_combiner(combiner, list(records), columnar=False)
        assert batch == record

    def test_combiner_preserves_first_seen_key_order(self):
        records = [(3, 1.0), (1, 2.0), (3, 3.0), (2, 4.0), (1, 5.0)]
        combiner = ("reduce", columnar.VectorizedCombine("+", _sum_combine))
        batch = stage_mod.apply_combiner(combiner, list(records), columnar=True)
        assert [k for k, _v in batch] == [3, 1, 2]

    def test_nan_and_negative_zero_min_folds_take_the_record_path(self):
        nan_records = [(0, float("nan")), (0, 1.0)]
        zero_records = [(0, -0.0), (0, 0.0)]
        combiner = ("reduce", columnar.VectorizedCombine("min", _min_combine))
        for records in (nan_records, zero_records):
            batch = stage_mod.apply_combiner(combiner, list(records), columnar=True)
            record = stage_mod.apply_combiner(combiner, list(records), columnar=False)
            assert len(batch) == len(record) == 1
            b, r = batch[0][1], record[0][1]
            assert (math.isnan(b) and math.isnan(r)) or (
                b == r and math.copysign(1.0, b) == math.copysign(1.0, r)
            )

    def test_integer_product_fold_matches_exactly(self):
        # "*" folds are never vectorized for ints (products overflow fast).
        records = [(0, 2**20), (0, 2**20), (0, 2**25)]
        combiner = ("reduce", columnar.VectorizedCombine("*", lambda a, b: a * b))
        batch = stage_mod.apply_combiner(combiner, list(records), columnar=True)
        assert batch == [(0, 2**65)]

    def test_unhashable_keys_take_the_record_path(self):
        records = [([0], 1.0), ([0], 2.0)]
        combiner = ("reduce", columnar.VectorizedCombine("+", _sum_combine))
        with pytest.raises(TypeError):
            # The record path itself cannot group unhashable keys either;
            # what matters is that columnar=True raises the *same* error
            # instead of silently misgrouping.
            stage_mod.apply_combiner(combiner, list(records), columnar=False)
        with pytest.raises(TypeError):
            stage_mod.apply_combiner(combiner, list(records), columnar=True)


# ---------------------------------------------------------------------------
# The list backend (no numpy) and the plumbing
# ---------------------------------------------------------------------------


class TestListBackend:
    def test_kernels_work_without_numpy(self, monkeypatch):
        monkeypatch.setattr(columnar, "np", None)
        out = columnar.OutTuple(
            [columnar.Col((0,)), columnar.BinOp("+", columnar.Col((1,)), columnar.Lit(1))]
        )
        chain = [
            _filter_stage(),
            stage_mod.NarrowStage(
                stage_mod.MAP,
                columnar.VectorizedMap(out, _pair_scope(), oracle=lambda p: (p[0], p[1] + 1)),
            ),
        ]
        records = [(i, i * 2) for i in range(12)]
        assert _run_both(chain, records) == [(i, i * 2 + 1) for i in range(12) if i > 2]

    def test_combine_requires_numpy_and_falls_back_cleanly(self, monkeypatch):
        monkeypatch.setattr(columnar, "np", None)
        combiner = ("reduce", columnar.VectorizedCombine("+", _sum_combine))
        records = [(i % 3, float(i)) for i in range(12)]
        batch = stage_mod.apply_combiner(combiner, list(records), columnar=True)
        assert batch == stage_mod.apply_combiner(combiner, list(records), columnar=False)


class TestPlumbing:
    def test_config_knob_reaches_the_context_and_runtime_key(self):
        with config_mod.options(columnar=True) as cfg:
            assert cfg.columnar is True
            assert True in {cfg.columnar} and cfg.runtime_key()[-1] is True
            ctx = cfg.make_context()
            try:
                assert ctx.columnar is True
            finally:
                ctx.close()
        assert config_mod.current_config().columnar is False

    def test_counters_surface_in_snapshot_and_explain(self):
        _outputs, (vectorized, fallbacks) = run_columnar("conditional_sum", "sequential")
        assert vectorized > 0
        with DistributedContext(num_partitions=4, columnar=True) as ctx:
            spec = get_program("conditional_sum")
            diablo_for(spec, ctx).compile(spec.source).run(**workload("conditional_sum"))
            snapshot = ctx.metrics.snapshot()
            assert snapshot["vectorized_stages"] == vectorized
            assert snapshot["columnar_fallbacks"] == fallbacks
            rendered = "\n".join(explain_metrics(ctx.metrics))
            assert f"vectorized stages: {vectorized}" in rendered

    def test_columnar_off_keeps_counters_at_zero(self):
        with DistributedContext(num_partitions=4) as ctx:
            ctx.parallelize([(i % 3, i) for i in range(30)]).reduce_by_key(_sum_combine).collect()
            assert ctx.metrics.vectorized_stages == 0
            assert ctx.metrics.columnar_fallbacks == 0
