"""Differential oracle suite for columnar vectorized execution.

The record-at-a-time path is the correctness oracle: with ``columnar=True``
*and* with the default ``columnar="auto"`` every Figure 3 workload must
produce **bit-identical** outputs under every executor mode (including the
harshest spill setting), because batch kernels either reproduce the record
semantics exactly or fall back per partition -- and auto mode only batches
chains that lower completely.

Kernel-level tests pin down the exactness guards one by one: Python-int
overflow, bool arithmetic, NaN/negative-zero folds, mixed-type comparisons,
division/modulo corner cases (zero divisors, negative zero, int64 overflow),
constant-fan-out flat_map expansion, grouped collect, the no-numpy list
backend and the per-partition record-path replay with its fallback memo.
"""

from __future__ import annotations

import functools
import math
import pickle

import pytest

from test_executor_equivalence import (
    SIZES,
    SPILLING_PROGRAMS,
    TINY_SPILL,
    _Outputs,
    interpreter_outputs,
    workload,
)
from test_soundness_programs import assert_same_outputs

from repro import operators
from repro.algebra import vectorize
from repro.algebra.explain import explain_metrics
from repro.api import config as config_mod
from repro.comprehension import ir
from repro.evaluation.harness import diablo_for, translated_outputs
from repro.functions import FunctionRegistry
from repro.programs import get_program, table2_program_names
from repro.runtime import columnar
from repro.runtime import stage as stage_mod
from repro.runtime.context import EXECUTOR_MODES, DistributedContext
from repro.runtime.partitioner import HashPartitioner

#: Both truthy columnar modes must match the record path bit for bit.
COLUMNAR_MODES = (True, "auto")


def run_columnar(
    name: str,
    mode: str,
    spill_threshold_bytes: int | None = None,
    columnar_mode: bool | str = True,
) -> tuple:
    """One Figure 3 workload under truthy columnar; outputs + metric pair."""
    spec = get_program(name)
    with DistributedContext(
        num_partitions=4,
        executor=mode,
        spill_threshold_bytes=spill_threshold_bytes,
        columnar=columnar_mode,
    ) as context:
        diablo = diablo_for(spec, context)
        result = diablo.compile(spec.source).run(**workload(name))
        outputs = translated_outputs(name, result)
        metrics = context.metrics
        return outputs, (metrics.vectorized_stages, metrics.columnar_fallbacks)


@functools.lru_cache(maxsize=None)
def record_path_outputs(name: str) -> dict:
    """The record-at-a-time oracle (``columnar=False``), once per program."""
    spec = get_program(name)
    with DistributedContext(num_partitions=4, columnar=False) as context:
        diablo = diablo_for(spec, context)
        result = diablo.compile(spec.source).run(**workload(name))
        assert context.metrics.vectorized_stages == 0, "columnar=False must not vectorize"
        return translated_outputs(name, result)


@pytest.mark.parametrize("columnar_mode", COLUMNAR_MODES, ids=["on", "auto"])
@pytest.mark.parametrize("mode", EXECUTOR_MODES)
@pytest.mark.parametrize("name", table2_program_names())
def test_every_figure3_workload_is_bit_identical_under_columnar(name, mode, columnar_mode):
    """columnar=True/auto == columnar=False == interpreter, per program and mode.

    The ``"auto"`` leg additionally runs at spill threshold 1 byte (the
    acceptance matrix: every workload x every executor x the harshest spill
    setting must be bit-identical to the record path under the default mode).
    """
    spill = 1 if columnar_mode == "auto" else None
    outputs, _counters = run_columnar(
        name, mode, spill_threshold_bytes=spill, columnar_mode=columnar_mode
    )
    assert outputs == record_path_outputs(name), (
        f"{name} under {mode!r}/columnar={columnar_mode!r}: "
        "columnar results differ from the record path"
    )
    assert_same_outputs(get_program(name), _Outputs(outputs), interpreter_outputs(name))


@pytest.mark.parametrize("columnar_mode", COLUMNAR_MODES, ids=["on", "auto"])
@pytest.mark.parametrize("name", SPILLING_PROGRAMS)
def test_figure3_wide_workloads_spilled_columnar_match_record_path(name, columnar_mode):
    outputs, _counters = run_columnar(
        name, "sequential", spill_threshold_bytes=TINY_SPILL, columnar_mode=columnar_mode
    )
    assert outputs == record_path_outputs(name)


def test_numeric_workloads_actually_vectorize():
    """The batch path must engage (not silently fall back everywhere)."""
    for name in ("conditional_sum", "histogram", "group_by"):
        _outputs, (vectorized, _fallbacks) = run_columnar(name, "sequential")
        assert vectorized > 0, f"{name}: no stage took the batch path"


def test_columnar_metrics_identical_across_executors():
    """Vectorization counters are plan properties, not executor properties."""
    per_mode = {}
    for mode in EXECUTOR_MODES:
        _outputs, counters = run_columnar("conditional_sum", mode)
        per_mode[mode] = counters
    assert per_mode["sequential"] == per_mode["threads"] == per_mode["processes"]


# ---------------------------------------------------------------------------
# ColumnarPartition: construction, reassembly, pickling
# ---------------------------------------------------------------------------


class TestColumnarPartition:
    def test_round_trips_scalars_pairs_and_dicts(self):
        for records in (
            [1, 2, 3],
            [1.5, -0.25, 3.0],
            ["a", "bb", "ccc"],
            [True, False, True],
            [(0, 1.0), (1, 2.0)],
            [((0, 1), 2.5), ((3, 4), -1.5)],
            [{"i": 1, "v": 2.0}, {"i": 3, "v": 4.0}],
        ):
            part = columnar.ColumnarPartition.from_records(records)
            assert part is not None, records
            out = part.to_records()
            assert out == records
            assert [type(a) for a in out] == [type(b) for b in records]

    def test_rejects_ragged_mixed_and_empty_input(self):
        assert columnar.ColumnarPartition.from_records([]) is None
        assert columnar.ColumnarPartition.from_records([(1, 2), (1, 2, 3)]) is None
        assert columnar.ColumnarPartition.from_records([1, "x"]) is None
        assert columnar.ColumnarPartition.from_records([1, 2.0]) is None
        assert columnar.ColumnarPartition.from_records([None, None]) is None
        assert columnar.ColumnarPartition.from_records([[1], [2]]) is None

    def test_rejects_ints_beyond_int64(self):
        assert columnar.ColumnarPartition.from_records([2**70, 1]) is None

    def test_pickles_across_the_process_boundary(self):
        records = [(i, float(i) / 2) for i in range(10)]
        part = columnar.ColumnarPartition.from_records(records)
        clone = pickle.loads(pickle.dumps(part))
        assert clone.to_records() == records

    def test_compress_keeps_python_types(self):
        part = columnar.ColumnarPartition.from_records([(i, i * 2) for i in range(6)])
        if columnar.np is not None:
            mask = columnar.np.array([True, False] * 3)
        else:
            mask = [True, False] * 3
        kept = part.compress(mask).to_records()
        assert kept == [(0, 0), (2, 4), (4, 8)]
        assert all(type(k) is int and type(v) is int for k, v in kept)


# ---------------------------------------------------------------------------
# Batch kernels vs. the record path, per stage kind
# ---------------------------------------------------------------------------


def _run_both(chain, records):
    """One fused chain under both paths; they must agree exactly."""
    record_path = stage_mod.compose(list(chain))(list(records), 0)
    batch_path = stage_mod.compose(list(chain), columnar=True)(list(records), 0)
    assert batch_path == record_path
    assert [type(r) for r in batch_path] == [type(r) for r in record_path]
    return batch_path


def _pair_scope():
    return columnar.ScalarScope({"lo": 2, "scale": 10})


def _filter_stage():
    predicate = columnar.BinOp(">", columnar.Col((0,)), columnar.Ref("lo"))
    return stage_mod.NarrowStage(
        stage_mod.FILTER,
        columnar.VectorizedFilter(predicate, _pair_scope(), oracle=lambda p: p[0] > 2),
    )


class TestBatchKernels:
    def test_map_filter_map_values_chain(self):
        out = columnar.OutTuple(
            [
                columnar.Col((0,)),
                columnar.BinOp("*", columnar.Col((1,)), columnar.Ref("scale")),
            ]
        )
        chain = [
            _filter_stage(),
            stage_mod.NarrowStage(
                stage_mod.MAP,
                columnar.VectorizedMap(
                    out, _pair_scope(), oracle=lambda p: (p[0], p[1] * 10)
                ),
            ),
            stage_mod.NarrowStage(
                stage_mod.MAP_VALUES,
                columnar.VectorizedMapValues(
                    columnar.BinOp("-", columnar.Col(()), columnar.Lit(1)),
                    columnar.ScalarScope(),
                    oracle=lambda v: v - 1,
                ),
            ),
        ]
        records = [(i, i + 1) for i in range(20)]
        result = _run_both(chain, records)
        assert result == [(i, (i + 1) * 10 - 1) for i in range(20) if i > 2]

    def test_bind_reroots_elements_into_rows(self):
        bind = columnar.VectorizedBind(
            ("tuple", (("var", "i"), ("var", "v"))),
            oracle=lambda pair: {"i": pair[0], "v": pair[1]},
        )
        chain = [stage_mod.NarrowStage(stage_mod.MAP, bind)]
        records = [(i, float(i)) for i in range(8)]
        assert _run_both(chain, records) == [{"i": i, "v": float(i)} for i in range(8)]

    def test_vectorized_functions_delegate_to_the_oracle_record_by_record(self):
        calls = []

        def oracle(p):
            calls.append(p)
            return p[0] > 2

        predicate = columnar.BinOp(">", columnar.Col((0,)), columnar.Lit(2))
        fn = columnar.VectorizedFilter(predicate, columnar.ScalarScope(), oracle=oracle)
        assert fn((5, "x")) is True
        assert calls == [(5, "x")], "__call__ must be the original closure, verbatim"

    def test_undefined_ref_falls_back_to_records(self):
        predicate = columnar.BinOp(">", columnar.Col((0,)), columnar.Ref("missing"))
        stage = stage_mod.NarrowStage(
            stage_mod.FILTER,
            columnar.VectorizedFilter(predicate, columnar.ScalarScope(), oracle=lambda p: True),
        )
        records = [(i, i) for i in range(5)]
        # Batch raises inside the kernel -> per-partition replay via the oracle.
        assert stage_mod.compose([stage], columnar=True)(records, 0) == records


# ---------------------------------------------------------------------------
# Exactness guards: every divergence hazard must take the record path
# ---------------------------------------------------------------------------


class TestExactnessGuards:
    def _both(self, op, left_values, right):
        """batch_binop vs. per-record apply_binary over a real column."""
        part = columnar.ColumnarPartition.from_records(list(left_values))
        assert part is not None
        left = part.leaf(())
        return left, right

    def test_large_int_arithmetic_falls_back(self):
        big = 2**40
        left, right = self._both("+", [big, big + 1], 1)
        with pytest.raises(columnar.ColumnarFallback):
            columnar.batch_binop("+", left, right, 2)

    def test_bool_arithmetic_falls_back(self):
        left, right = self._both("+", [True, False], 1)
        with pytest.raises(columnar.ColumnarFallback):
            columnar.batch_binop("+", left, right, 2)

    def test_mixed_str_number_comparison_falls_back(self):
        left, right = self._both("<", ["a", "b"], 3)
        with pytest.raises(columnar.ColumnarFallback):
            columnar.batch_binop("<", left, right, 2)

    def test_small_int_arithmetic_matches_python(self):
        left, right = self._both("*", [3, -4, 0], 7)
        result = columnar.batch_binop("*", left, right, 3)
        assert columnar._column_list(result) == [21, -28, 0]


# ---------------------------------------------------------------------------
# Division and modulo: exact kernels with record-path error parity
# ---------------------------------------------------------------------------


def _apply_div(op, divisor, value):
    """Module-level oracle (picklable for the process executor)."""
    return operators.apply_binary(op, value, divisor)


def _div_map(op, divisor):
    """``(k, v) -> (k, v <op> divisor)`` as a vectorized pair map."""
    out = columnar.OutTuple(
        [columnar.Col((0,)), columnar.BinOp(op, columnar.Col((1,)), columnar.Lit(divisor))]
    )
    return columnar.VectorizedMap(
        out, columnar.ScalarScope(), oracle=functools.partial(_pair_div, op, divisor)
    )


def _pair_div(op, divisor, pair):
    return (pair[0], operators.apply_binary(op, pair[1], divisor))


#: (op, values, divisor): int/int exact and inexact, floats, negative zero
#: dividends, ints beyond the 2**31 double-rounding guard, bool operands.
DIV_BATTERY = [
    ("/", [10, -9, 8, 7, 0], 2),
    ("/", [10, -10, 20, 0], 5),
    ("%", [10, -9, 8, 7, 0], 3),
    ("%", [10, -9, 7], -3),
    ("/", [1.5, -2.25, 0.0, -0.0], 0.25),
    ("%", [1.5, -2.25, -0.0, 7.5], 0.25),
    ("/", [2**40 + 1, -(2**40), 6], 3),
    ("%", [2**40 + 1, -(2**40)], 7),
    ("/", [True, False], True),
    ("%", [True, False], True),
]


class TestDivisionKernels:
    def test_division_and_modulo_are_vectorized(self):
        assert "/" in columnar.SUPPORTED_BINOPS
        assert "%" in columnar.SUPPORTED_BINOPS

    @pytest.mark.parametrize("op,values,divisor", DIV_BATTERY)
    def test_batch_matches_apply_binary_exactly(self, op, values, divisor):
        chain = [stage_mod.NarrowStage(stage_mod.MAP, _div_map(op, divisor))]
        records = [(i, value) for i, value in enumerate(values)]
        result = _run_both(chain, records)
        expected = [(i, operators.apply_binary(op, value, divisor)) for i, value in enumerate(values)]
        assert result == expected
        # Exactness includes the sign of zero (e.g. ``-0.0 % 0.25 == 0.0``).
        for (_, got), (_, want) in zip(result, expected, strict=True):
            if isinstance(want, float):
                assert math.copysign(1.0, got) == math.copysign(1.0, want)

    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    @pytest.mark.parametrize("op,values,divisor", DIV_BATTERY)
    def test_battery_through_every_executor_at_spill_one(self, op, values, divisor, mode):
        """The full pipeline: map + shuffle at spill threshold 1, per executor."""

        def run(columnar_mode):
            with DistributedContext(
                num_partitions=3,
                executor=mode,
                spill_threshold_bytes=1,
                columnar=columnar_mode,
            ) as ctx:
                pairs = [(i % 2, value) for i, value in enumerate(values)]
                data = ctx.parallelize(pairs).map(_div_map(op, divisor))
                return data.collect(), data.reduce_by_key(_sum_combine).collect()

        assert run(True) == run(False)

    @pytest.mark.parametrize(
        "op,values,divisor",
        [
            ("/", [1, 2], 0),
            ("%", [1, 2], 0),
            ("/", [1.0], 0.0),
            ("%", [1.0], 0.0),
            ("/", [1.0, -1.0], -0.0),
        ],
    )
    def test_zero_divisor_raises_the_canonical_error_on_both_paths(self, op, values, divisor):
        """numpy would emit inf/nan; the batch path must replay and raise."""
        chain = [stage_mod.NarrowStage(stage_mod.MAP, _div_map(op, divisor))]
        records = [(i, value) for i, value in enumerate(values)]
        with pytest.raises(ZeroDivisionError):
            stage_mod.compose(list(chain))(list(records), 0)
        with pytest.raises(ZeroDivisionError):
            stage_mod.compose(list(chain), columnar=True)(list(records), 0)

    def test_exact_int_division_returns_ints(self):
        chain = [stage_mod.NarrowStage(stage_mod.MAP, _div_map("/", 4))]
        records = [(0, 8), (1, -12), (2, 0)]
        result = stage_mod.compose(list(chain), columnar=True)(list(records), 0)
        assert result == [(0, 2), (1, -3), (2, 0)]
        assert all(type(v) is int for _, v in result)

    def test_mixed_exact_inexact_division_keeps_per_element_types(self):
        # ``8 / 4`` is an exact int, ``9 / 4`` a float; no single dtype
        # represents that, so the kernel must replay through the record path.
        chain = [stage_mod.NarrowStage(stage_mod.MAP, _div_map("/", 4))]
        records = [(0, 8), (1, 9)]
        result = stage_mod.compose(list(chain), columnar=True)(list(records), 0)
        assert result == [(0, 2), (1, 2.25)]
        assert type(result[0][1]) is int and type(result[1][1]) is float


def _sum_combine(a, b):
    return a + b


def _min_combine(a, b):
    return min(a, b)


class TestCombinerKernels:
    def _records(self):
        return [(i % 5, float(i)) for i in range(40)]

    def test_reduce_combiner_matches_record_path(self):
        for op, fn in (("+", _sum_combine), ("min", _min_combine)):
            combiner = ("reduce", columnar.VectorizedCombine(op, fn))
            records = self._records()
            batch = stage_mod.apply_combiner(combiner, list(records), columnar=True)
            record = stage_mod.apply_combiner(combiner, list(records), columnar=False)
            assert batch == record, op

    def test_seq_combiner_matches_record_path(self):
        combiner = ("seq", 0.0, columnar.VectorizedCombine("+", _sum_combine))
        records = self._records()
        batch = stage_mod.apply_combiner(combiner, list(records), columnar=True)
        record = stage_mod.apply_combiner(combiner, list(records), columnar=False)
        assert batch == record

    def test_combiner_preserves_first_seen_key_order(self):
        records = [(3, 1.0), (1, 2.0), (3, 3.0), (2, 4.0), (1, 5.0)]
        combiner = ("reduce", columnar.VectorizedCombine("+", _sum_combine))
        batch = stage_mod.apply_combiner(combiner, list(records), columnar=True)
        assert [k for k, _v in batch] == [3, 1, 2]

    def test_nan_and_negative_zero_min_folds_take_the_record_path(self):
        nan_records = [(0, float("nan")), (0, 1.0)]
        zero_records = [(0, -0.0), (0, 0.0)]
        combiner = ("reduce", columnar.VectorizedCombine("min", _min_combine))
        for records in (nan_records, zero_records):
            batch = stage_mod.apply_combiner(combiner, list(records), columnar=True)
            record = stage_mod.apply_combiner(combiner, list(records), columnar=False)
            assert len(batch) == len(record) == 1
            b, r = batch[0][1], record[0][1]
            assert (math.isnan(b) and math.isnan(r)) or (
                b == r and math.copysign(1.0, b) == math.copysign(1.0, r)
            )

    def test_integer_product_fold_matches_exactly(self):
        # "*" folds are never vectorized for ints (products overflow fast).
        records = [(0, 2**20), (0, 2**20), (0, 2**25)]
        combiner = ("reduce", columnar.VectorizedCombine("*", lambda a, b: a * b))
        batch = stage_mod.apply_combiner(combiner, list(records), columnar=True)
        assert batch == [(0, 2**65)]

    def test_unhashable_keys_take_the_record_path(self):
        records = [([0], 1.0), ([0], 2.0)]
        combiner = ("reduce", columnar.VectorizedCombine("+", _sum_combine))
        with pytest.raises(TypeError):
            # The record path itself cannot group unhashable keys either;
            # what matters is that columnar=True raises the *same* error
            # instead of silently misgrouping.
            stage_mod.apply_combiner(combiner, list(records), columnar=False)
        with pytest.raises(TypeError):
            stage_mod.apply_combiner(combiner, list(records), columnar=True)


# ---------------------------------------------------------------------------
# Constant-fan-out flat_map kernels and their lowering
# ---------------------------------------------------------------------------


def _tuple_flat_oracle(pair):
    return [(pair[0], pair[1]), (pair[1], pair[0])]


def _extend_flat_oracle(row):
    return [{**row, "w": 10}, {**row, "w": 20}]


class TestFlatMapKernels:
    def test_tuple_spec_interleaves_in_record_order(self):
        fn = columnar.VectorizedFlatMap(
            (
                "tuple",
                (
                    columnar.OutTuple([columnar.Col((0,)), columnar.Col((1,))]),
                    columnar.OutTuple([columnar.Col((1,)), columnar.Col((0,))]),
                ),
            ),
            oracle=_tuple_flat_oracle,
        )
        chain = [stage_mod.NarrowStage(stage_mod.FLAT_MAP, fn)]
        records = [(1, 2), (3, 4), (5, 6)]
        assert _run_both(chain, records) == [
            (1, 2), (2, 1), (3, 4), (4, 3), (5, 6), (6, 5)
        ]

    def test_extend_spec_repeats_rows_with_literal_bindings(self):
        fn = columnar.VectorizedFlatMap(
            ("extend", ("w",), ((columnar.Lit(10),), (columnar.Lit(20),))),
            oracle=_extend_flat_oracle,
        )
        chain = [stage_mod.NarrowStage(stage_mod.FLAT_MAP, fn)]
        records = [{"i": 0, "v": 1.5}, {"i": 1, "v": 2.5}]
        assert _run_both(chain, records) == [
            {"i": 0, "v": 1.5, "w": 10},
            {"i": 0, "v": 1.5, "w": 20},
            {"i": 1, "v": 2.5, "w": 10},
            {"i": 1, "v": 2.5, "w": 20},
        ]

    def test_extend_falls_back_when_rebinding_an_existing_field(self):
        fn = columnar.VectorizedFlatMap(
            ("extend", ("v",), ((columnar.Lit(10),), (columnar.Lit(20),))),
            oracle=lambda row: [{**row, "v": 10}, {**row, "v": 20}],
        )
        part = columnar.ColumnarPartition.from_records([{"i": 0, "v": 1}])
        with pytest.raises(columnar.ColumnarFallback):
            fn.apply_batch(part)
        # The fused chain still produces the record-path answer via replay.
        chain = [stage_mod.NarrowStage(stage_mod.FLAT_MAP, fn)]
        records = [{"i": 0, "v": 1}, {"i": 1, "v": 2}]
        assert _run_both(chain, records) == [
            {"i": 0, "v": 10}, {"i": 0, "v": 20}, {"i": 1, "v": 10}, {"i": 1, "v": 20}
        ]

    def test_mixed_dtype_copies_fall_back(self):
        fn = columnar.VectorizedFlatMap(
            ("extend", ("w",), ((columnar.Lit(1),), (columnar.Lit(2.5),))),
            oracle=lambda row: [{**row, "w": 1}, {**row, "w": 2.5}],
        )
        records = [{"i": 0}, {"i": 1}]
        chain = [stage_mod.NarrowStage(stage_mod.FLAT_MAP, fn)]
        out = _run_both(chain, records)
        assert [type(row["w"]) for row in out] == [int, float, int, float]


class TestExtendFlatMapLowering:
    def test_lowers_uniform_scalar_bindings(self):
        bindings = [{"j": 0, "w": 1.5}, {"j": 1, "w": -2.0}]
        fn = vectorize.extend_flat_map(bindings, oracle=lambda row: None)
        assert isinstance(fn, columnar.VectorizedFlatMap)
        assert fn.spec[0] == "extend" and fn.spec[1] == ("j", "w")
        assert fn.fan_out == 2

    def test_rejects_empty_mismatched_and_non_scalar_bindings(self):
        oracle = lambda row: None  # noqa: E731
        assert vectorize.extend_flat_map([], oracle) is None
        assert vectorize.extend_flat_map([{"j": 0}, {"k": 1}], oracle) is None
        assert vectorize.extend_flat_map([{"j": [0]}], oracle) is None
        assert vectorize.extend_flat_map([{"j": (0, 1)}], oracle) is None
        assert vectorize.extend_flat_map([{"j": None}], oracle) is None

    def test_lowered_kernel_matches_the_oracle(self):
        bindings = [{"j": 0}, {"j": 1}, {"j": 2}]

        def oracle(row):
            return [{**row, **binding} for binding in bindings]

        fn = vectorize.extend_flat_map(bindings, oracle)
        chain = [stage_mod.NarrowStage(stage_mod.FLAT_MAP, fn)]
        records = [{"i": i, "v": float(i)} for i in range(5)]
        expected = [out for row in records for out in oracle(row)]
        assert _run_both(chain, records) == expected


# ---------------------------------------------------------------------------
# Grouped collect: the ("group",) adaptive combiner's batch kernel
# ---------------------------------------------------------------------------


class TestGroupedCollect:
    def test_matches_record_path_grouping_exactly(self):
        records = [(3, 1.0), (1, 2.0), (3, 3.0), (2, 4.0), (1, 5.0), (3, 6.0)]
        batch = stage_mod.apply_combiner(("group",), list(records), columnar=True)
        record = stage_mod.apply_combiner(("group",), list(records), columnar=False)
        assert batch == record
        assert [key for key, _ in batch] == [3, 1, 2], "first-seen key order"
        assert batch[0][1] == [1.0, 3.0, 6.0], "values keep record order"

    def test_engages_the_kernel_for_int_keys(self):
        if columnar.np is None:
            pytest.skip("grouped collect requires numpy")
        part = columnar.ColumnarPartition.from_records([(1, "a"), (2, "b"), (1, "c")])
        assert columnar._grouped_collect(part) == [(1, ["a", "c"]), (2, ["b"])]

    def test_non_int_keys_fall_back_to_the_record_path(self):
        records = [(1.5, "a"), (2.5, "b"), (1.5, "c")]
        batch = stage_mod.apply_combiner(("group",), list(records), columnar=True)
        assert batch == [(1.5, ["a", "c"]), (2.5, ["b"])]

    def test_group_combiner_is_vectorizable(self):
        assert columnar.combiner_vectorizable(("group",))


# ---------------------------------------------------------------------------
# Scalar-call lowering: abs/min/max as batch kernels
# ---------------------------------------------------------------------------


class TestScalarCalls:
    def _lower(self, term, functions):
        return vectorize.lower_term(term, ("x", "y"), functions)

    def test_registered_builtins_lower_to_call_exprs(self):
        functions = FunctionRegistry()
        term = ir.CCall("abs", (ir.CVar("x"),))
        lowered = self._lower(term, functions)
        assert isinstance(lowered, columnar.Call)
        assert lowered.function == "abs"

    def test_shadowed_builtins_do_not_lower(self):
        functions = FunctionRegistry()
        functions.register("abs", lambda x: -x)
        assert self._lower(ir.CCall("abs", (ir.CVar("x"),)), functions) is None

    def test_unknown_functions_and_arities_do_not_lower(self):
        functions = FunctionRegistry()
        assert self._lower(ir.CCall("sqrt", (ir.CVar("x"),)), functions) is None
        assert self._lower(ir.CCall("abs", (ir.CVar("x"), ir.CVar("y"))), functions) is None
        # 1-arg min/max iterate a bag -- never a scalar kernel.
        assert self._lower(ir.CCall("min", (ir.CVar("x"),)), functions) is None
        assert self._lower(ir.CCall("min", (ir.CVar("x"), ir.CVar("y"))), functions) is not None

    def test_call_kernels_match_the_builtins(self):
        expr = columnar.Call(
            "min",
            [columnar.Call("abs", [columnar.Col((1,))]), columnar.Lit(3)],
        )
        fn = columnar.VectorizedMap(
            columnar.OutTuple([columnar.Col((0,)), expr]),
            columnar.ScalarScope(),
            oracle=lambda p: (p[0], min(abs(p[1]), 3)),
        )
        chain = [stage_mod.NarrowStage(stage_mod.MAP, fn)]
        records = [(i, v) for i, v in enumerate([-5, -2, 0, 2, 5])]
        assert _run_both(chain, records) == [(0, 3), (1, 2), (2, 0), (3, 2), (4, 3)]


# ---------------------------------------------------------------------------
# columnar="auto": batch only fully lowerable chains
# ---------------------------------------------------------------------------


def _vector_filter_stage():
    predicate = columnar.BinOp(">", columnar.Col((0,)), columnar.Lit(2))
    return stage_mod.NarrowStage(
        stage_mod.FILTER,
        columnar.VectorizedFilter(predicate, columnar.ScalarScope(), oracle=lambda p: p[0] > 2),
    )


def _record_map_stage():
    return stage_mod.NarrowStage(stage_mod.MAP, lambda p: (p[0], p[1] + 1))


class TestAutoMode:
    def test_fully_lowerable_chain_batches(self):
        assert stage_mod._auto_batchable((_vector_filter_stage(),))

    def test_partially_lowerable_chain_stays_on_records(self):
        chain = (_vector_filter_stage(), _record_map_stage())
        assert not stage_mod._auto_batchable(chain)
        # compose(auto) over a mixed chain is the plain record-path closure.
        records = [(i, i) for i in range(6)]
        auto = stage_mod.compose(list(chain), columnar="auto")(list(records), 0)
        record = stage_mod.compose(list(chain), columnar=False)(list(records), 0)
        assert auto == record

    def test_pure_record_chain_never_batches(self):
        assert not stage_mod._auto_batchable((_record_map_stage(),))

    def test_auto_counts_unlowerable_chains_entirely_as_fallbacks(self):
        chain = (_vector_filter_stage(), _record_map_stage())
        assert stage_mod.vectorization_counts(chain, True) == (1, 1)
        assert stage_mod.vectorization_counts(chain, "auto") == (0, 2)

    def test_report_names_kernels_and_reasons(self):
        chain = (_vector_filter_stage(), _record_map_stage())
        assert stage_mod.vectorization_report(chain, True) == [
            ("filter", "VectorizedFilter", "batch"),
            ("map", None, "no batch kernel"),
        ]
        # Under auto the lowerable filter is disabled by the mixed chain; the
        # map's reason stays the more precise "no batch kernel".
        assert stage_mod.vectorization_report(chain, "auto") == [
            ("filter", None, "auto: chain not fully lowerable"),
            ("map", None, "no batch kernel"),
        ]

    def test_config_accepts_auto_and_rejects_others(self):
        with config_mod.options(columnar="auto") as cfg:
            assert cfg.columnar == "auto"
            ctx = cfg.make_context()
            try:
                assert ctx.columnar == "auto"
            finally:
                ctx.close()
        with pytest.raises(ValueError):
            config_mod.DiabloConfig(columnar="sometimes")

    def test_env_fallback_parses_all_spellings(self, monkeypatch):
        for raw, expected in (
            ("auto", "auto"), ("1", True), ("true", True), ("on", True),
            ("0", False), ("off", False), ("", False),
        ):
            monkeypatch.setenv("DIABLO_COLUMNAR", raw)
            with DistributedContext(num_partitions=2) as ctx:
                assert ctx.columnar == expected, raw
        monkeypatch.setenv("DIABLO_COLUMNAR", "sometimes")
        with pytest.raises(ValueError):
            DistributedContext(num_partitions=2)


# ---------------------------------------------------------------------------
# Batch-runtime bookkeeping: fallback memo, resident partitions, buckets
# ---------------------------------------------------------------------------


def _failing_batch_stage():
    """A vectorizable-looking stage whose kernel always falls back."""
    predicate = columnar.BinOp(">", columnar.Col((0,)), columnar.Ref("missing"))
    return stage_mod.NarrowStage(
        stage_mod.FILTER,
        columnar.VectorizedFilter(predicate, columnar.ScalarScope(), oracle=lambda p: True),
    )


class TestBatchRuntime:
    @pytest.fixture(autouse=True)
    def _clean_runtime_state(self):
        stage_mod._FALLBACK_MEMO.clear()
        stage_mod._RESIDENT.clear()
        stage_mod.consume_batch_stats()
        yield
        stage_mod._FALLBACK_MEMO.clear()
        stage_mod._RESIDENT.clear()
        stage_mod.consume_batch_stats()

    def test_fallbacks_are_memoized_across_partitions(self):
        fn = stage_mod.compose([_failing_batch_stage()], columnar=True)
        records = [(i, i) for i in range(4)]
        assert fn(list(records), 0) == records  # falls back, memoizes
        assert fn(list(records), 1) == records  # skips the conversion attempt
        assert fn(list(records), 2) == records
        stats = stage_mod.consume_batch_stats()
        assert stats["memoized_skips"] == 2

    def test_consume_batch_stats_resets(self):
        fn = stage_mod.compose([_failing_batch_stage()], columnar=True)
        fn([(0, 0)], 0)
        fn([(0, 0)], 1)
        assert stage_mod.consume_batch_stats()["memoized_skips"] == 1
        assert stage_mod.consume_batch_stats()["memoized_skips"] == 0

    def test_consecutive_forces_reuse_the_resident_partition(self):
        first = stage_mod.compose([_vector_filter_stage()], columnar=True)
        second = stage_mod.compose([_vector_filter_stage()], columnar=True)
        out = first([(i, i) for i in range(8)], 0)
        assert stage_mod.consume_batch_stats()["resident_reuses"] == 0
        # Feeding the same list object back skips from_records entirely.
        again = second(out, 0)
        assert stage_mod.consume_batch_stats()["resident_reuses"] == 1
        assert again == [pair for pair in out if pair[0] > 2]

    def test_resident_cache_checks_identity_not_equality(self):
        fn = stage_mod.compose([_vector_filter_stage()], columnar=True)
        out = fn([(i, i) for i in range(8)], 0)
        fn(list(out), 0)  # an equal but distinct list must not hit the cache
        assert stage_mod.consume_batch_stats()["resident_reuses"] == 0

    def test_vector_buckets_match_the_partitioner(self):
        if columnar.np is None:
            pytest.skip("vectorized bucketing requires numpy")
        partitioner = HashPartitioner(4)
        fn = stage_mod.compose([_vector_filter_stage()], columnar=True)
        records = fn([(i - 3, float(i)) for i in range(40)], 0)
        buckets = stage_mod._vector_buckets(partitioner, stage_mod.pair_key, records, True)
        assert buckets is not None
        assert buckets == [partitioner.partition(key) for key, _ in records]
        assert stage_mod.consume_batch_stats()["vector_bucket_tasks"] == 1

    def test_vector_buckets_refuse_hash_hostile_keys(self):
        if columnar.np is None:
            pytest.skip("vectorized bucketing requires numpy")
        partitioner = HashPartitioner(4)
        keep_all = stage_mod.NarrowStage(
            stage_mod.FILTER,
            columnar.VectorizedFilter(
                columnar.BinOp(">", columnar.Col((0,)), columnar.Lit(-100)),
                columnar.ScalarScope(),
                oracle=lambda p: p[0] > -100,
            ),
        )
        fn = stage_mod.compose([keep_all], columnar=True)
        # hash(-1) == -2: a -1 key must disable the vectorized path outright.
        records = fn([(i, float(i)) for i in range(3, 10)] + [(-1, 0.0)], 0)
        assert stage_mod._vector_buckets(partitioner, stage_mod.pair_key, records, True) is None

    def test_vector_buckets_require_residency_and_columnar(self):
        partitioner = HashPartitioner(4)
        records = [(i, float(i)) for i in range(10)]
        assert stage_mod._vector_buckets(partitioner, stage_mod.pair_key, records, True) is None
        fn = stage_mod.compose([_vector_filter_stage()], columnar=True)
        out = fn(records, 0)
        assert stage_mod._vector_buckets(partitioner, stage_mod.pair_key, out, False) is None

    def test_runtime_counters_reach_metrics_and_explain(self):
        """pagerank's map-side shuffles bucket vectorially end to end."""
        if columnar.np is None:
            pytest.skip("vectorized bucketing requires numpy")
        spec = get_program("pagerank")
        with DistributedContext(num_partitions=4, columnar="auto") as ctx:
            diablo_for(spec, ctx).compile(spec.source).run(**workload("pagerank"))
            assert ctx.metrics.columnar_vector_bucket_tasks > 0
            snapshot = ctx.metrics.snapshot()
            assert snapshot["columnar_vector_bucket_tasks"] > 0
            rendered = "\n".join(explain_metrics(ctx.metrics))
            assert "vectorized bucket task(s)" in rendered


# ---------------------------------------------------------------------------
# The list backend (no numpy) and the plumbing
# ---------------------------------------------------------------------------


class TestListBackend:
    def test_kernels_work_without_numpy(self, monkeypatch):
        monkeypatch.setattr(columnar, "np", None)
        out = columnar.OutTuple(
            [columnar.Col((0,)), columnar.BinOp("+", columnar.Col((1,)), columnar.Lit(1))]
        )
        chain = [
            _filter_stage(),
            stage_mod.NarrowStage(
                stage_mod.MAP,
                columnar.VectorizedMap(out, _pair_scope(), oracle=lambda p: (p[0], p[1] + 1)),
            ),
        ]
        records = [(i, i * 2) for i in range(12)]
        assert _run_both(chain, records) == [(i, i * 2 + 1) for i in range(12) if i > 2]

    def test_combine_requires_numpy_and_falls_back_cleanly(self, monkeypatch):
        monkeypatch.setattr(columnar, "np", None)
        combiner = ("reduce", columnar.VectorizedCombine("+", _sum_combine))
        records = [(i % 3, float(i)) for i in range(12)]
        batch = stage_mod.apply_combiner(combiner, list(records), columnar=True)
        assert batch == stage_mod.apply_combiner(combiner, list(records), columnar=False)


class TestPlumbing:
    def test_config_knob_reaches_the_context_and_runtime_key(self):
        with config_mod.options(columnar=True) as cfg:
            assert cfg.columnar is True
            assert True in {cfg.columnar} and cfg.runtime_key()[-1] is True
            ctx = cfg.make_context()
            try:
                assert ctx.columnar is True
            finally:
                ctx.close()
        assert config_mod.current_config().columnar == "auto", "auto is the default"

    def test_counters_surface_in_snapshot_and_explain(self):
        _outputs, (vectorized, fallbacks) = run_columnar("conditional_sum", "sequential")
        assert vectorized > 0
        with DistributedContext(num_partitions=4, columnar=True) as ctx:
            spec = get_program("conditional_sum")
            diablo_for(spec, ctx).compile(spec.source).run(**workload("conditional_sum"))
            snapshot = ctx.metrics.snapshot()
            assert snapshot["vectorized_stages"] == vectorized
            assert snapshot["columnar_fallbacks"] == fallbacks
            rendered = "\n".join(explain_metrics(ctx.metrics))
            assert f"vectorized stages: {vectorized}" in rendered

    def test_dataset_explain_shows_per_chain_vectorization_notes(self):
        with DistributedContext(num_partitions=2, columnar="auto") as ctx:
            data = ctx.parallelize([(i, i * 3) for i in range(20)]).filter(
                columnar.VectorizedFilter(
                    columnar.BinOp("<", columnar.Col((1,)), columnar.Lit(100)),
                    columnar.ScalarScope(),
                    oracle=lambda p: p[1] < 100,
                )
            )
            assert "vectorized: filter: VectorizedFilter" in data.explain(), "pending plan"
            data.collect()
            assert "vectorized: filter: VectorizedFilter" in data.explain(), "materialized"

    def test_dataset_explain_names_the_fallback_reason(self):
        with DistributedContext(num_partitions=2, columnar="auto") as ctx:
            # A plain closure next to a vectorized stage: auto keeps the whole
            # chain on records and the note says why.
            data = (
                ctx.parallelize([(i, i * 3) for i in range(20)])
                .filter(
                    columnar.VectorizedFilter(
                        columnar.BinOp("<", columnar.Col((1,)), columnar.Lit(100)),
                        columnar.ScalarScope(),
                        oracle=lambda p: p[1] < 100,
                    )
                )
                .map(lambda p: (p[0], p[1] + 1))
            )
            data.collect()
            rendered = data.explain()
            assert "record path (auto: chain not fully lowerable)" in rendered
            assert "record path (no batch kernel)" in rendered

    def test_columnar_off_keeps_counters_at_zero(self):
        with DistributedContext(num_partitions=4, columnar=False) as ctx:
            ctx.parallelize([(i % 3, i) for i in range(30)]).reduce_by_key(_sum_combine).collect()
            assert ctx.metrics.vectorized_stages == 0
            assert ctx.metrics.columnar_fallbacks == 0
