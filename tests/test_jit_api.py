"""Tests for the ``@diablo.jit`` API: typed signatures, value returns, caching.

The differential tests are the important ones: jit-decorated Python versions
of Figure 3 workloads (conditional sum, word count, matrix addition,
PageRank) must agree with the sequential reference interpreter running the
very same converted loop program.
"""

from __future__ import annotations

import pytest

import repro.api as diablo
from repro import Diablo
from repro.api import Bag, DiabloConfig, Matrix, Vector
from repro.loop_lang import ast
from repro.loop_lang.interpreter import interpret_program
from repro.runtime.dataset import Dataset
from repro.translate.cache import CompilationCache
from repro.workloads import workload_for_program
from repro.workloads.generators import random_doubles, random_matrix

# ---------------------------------------------------------------------------
# jit-decorated Figure 3 workloads (module level, as users would write them)
# ---------------------------------------------------------------------------


@diablo.jit(cache=CompilationCache())
def conditional_sum(V):
    total: float = 0.0
    for v in V:
        if v < 100:
            total += v
    return total


@diablo.jit(cache=CompilationCache())
def word_count(words):
    C = {}
    for w in words:
        C[w] += 1
    return C


@diablo.jit(cache=CompilationCache())
def matrix_addition(M: Matrix, N2: Matrix, n: int):
    R: Matrix = Matrix()
    for i in range(n):
        for j in range(n):
            R[i, j] = M[i, j] + N2[i, j]
    return R


@diablo.jit  # on the shared global cache: exercised by the cache tests
def pagerank(E: Matrix, N: int, num_steps: int):
    P: Vector = Vector()
    C: Vector = Vector()
    b: float = 0.85
    for i in range(1, N + 1):
        C[i] = 0
        P[i] = 1.0 / N
    for i in range(1, N + 1):
        for j in range(1, N + 1):
            if E[i, j]:
                C[i] += 1
    k: int = 0
    while k < num_steps:
        Q: Matrix = Matrix()
        k += 1
        for i in range(1, N + 1):
            for j in range(1, N + 1):
                if E[i, j]:
                    Q[i, j] = P[i]
        for i in range(1, N + 1):
            P[i] = (1 - b) / N
        for i in range(1, N + 1):
            for j in range(1, N + 1):
                P[i] += b * Q[j, i] / C[j]
    return P


def assert_maps_close(actual: dict, expected: dict, tolerance: float = 1e-9) -> None:
    assert set(actual) == set(expected)
    for key, value in expected.items():
        assert abs(actual[key] - value) <= tolerance * max(1.0, abs(value)), key


# ---------------------------------------------------------------------------
# differential checks against the sequential interpreter
# ---------------------------------------------------------------------------


class TestDifferential:
    def test_conditional_sum_matches_interpreter(self):
        values = random_doubles(2_000, seed=11)
        result = conditional_sum(values)
        oracle = interpret_program(conditional_sum.program, {"V": values})
        assert abs(result - oracle["total"]) < 1e-9

    def test_word_count_matches_interpreter(self):
        words = [f"w{i % 37}" for i in range(1_500)]
        result = word_count(words)
        assert isinstance(result, Dataset)
        oracle = interpret_program(word_count.program, {"words": words})
        assert result.collect_as_map() == oracle["C"]

    def test_matrix_addition_matches_interpreter(self):
        n = 10
        left = random_matrix(n, n, seed=3)
        right = random_matrix(n, n, seed=4)
        result = matrix_addition(left, right, n)
        oracle = interpret_program(
            matrix_addition.program, {"M": left, "N2": right, "n": n}
        )
        assert_maps_close(result.collect_as_map(), oracle["R"])

    def test_pagerank_matches_interpreter(self):
        workload = workload_for_program("pagerank", 25)
        E, vertices = workload["E"], workload["N"]
        ranks = pagerank(E, vertices, 2)
        oracle = interpret_program(
            pagerank.program, {"E": E, "N": vertices, "num_steps": 2}
        )
        assert_maps_close(ranks.collect_as_map(), oracle["P"])


# ---------------------------------------------------------------------------
# the acceptance scenario: an iterative driver pays translation once
# ---------------------------------------------------------------------------


class TestCompilationCache:
    def test_pagerank_driver_returns_values_and_caches(self):
        diablo.cache_clear()
        workload = workload_for_program("pagerank", 25)
        E, vertices = workload["E"], workload["N"]
        # `return P` maps the result environment back to the returned name.
        ranks = pagerank(E, vertices, 1)
        assert isinstance(ranks, Dataset)
        # A repeated-call sweep (the k-means / PageRank driver pattern):
        for steps in (1, 2, 3):
            pagerank(E, vertices, steps)
        info = diablo.cache_info()
        assert info.misses == 1, "exactly one translation for the whole sweep"
        assert info.hits >= 3

    def test_private_cache_counts_per_function(self):
        values = [1.0, 2.0, 3.0]
        conditional_sum.cache_clear()
        assert conditional_sum(values) == 6.0
        assert conditional_sum(values) == 6.0
        info = conditional_sum.cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_facade_compiler_caches_repeat_compiles(self):
        source = "var s: double = 0.0; for v in V do s += v;"
        with Diablo() as facade:
            first = facade.compile(source)
            second = facade.compile(source)
            assert first.translation is second.translation
            info = facade.cache_info()
            assert info.misses == 1 and info.hits == 1
            facade.cache_clear()
            assert facade.cache_info().misses == 0

    def test_different_options_do_not_share_entries(self):
        source = "var s: double = 0.0; for v in V do s += v;"
        cache = CompilationCache()
        from repro.translate.translator import DiabloCompiler

        optimized = DiabloCompiler(optimize=True, cache=cache).compile(source)
        unoptimized = DiabloCompiler(optimize=False, cache=cache).compile(source)
        assert optimized is not unoptimized
        assert cache.info().misses == 2

    def test_replacing_a_monoid_invalidates_cached_translations(self):
        from repro.comprehension.monoids import MonoidRegistry, argmin_monoid
        from repro.translate.translator import DiabloCompiler

        registry = MonoidRegistry()
        compiler = DiabloCompiler(monoids=registry, cache=CompilationCache())
        source = "var s: double = 0.0; for v in V do s += v;"
        first = compiler.compile(source)
        assert compiler.compile(source) is first
        registry.register(argmin_monoid())
        assert compiler.compile(source) is not first


# ---------------------------------------------------------------------------
# signature binding and value returns
# ---------------------------------------------------------------------------


class TestCallingConvention:
    def test_positional_keyword_and_default_binding(self):
        @diablo.jit(cache=CompilationCache())
        def scaled_sum(V, factor: float = 2.0):
            total: float = 0.0
            for v in V:
                total += v * factor
            return total

        assert scaled_sum([1.0, 2.0]) == 6.0
        assert scaled_sum([1.0, 2.0], 3.0) == 9.0
        assert scaled_sum(V=[1.0, 2.0], factor=0.5) == 1.5
        scaled_sum.close()

    def test_tuple_return(self):
        @diablo.jit(cache=CompilationCache())
        def stats(V):
            total: float = 0.0
            n: int = 0
            for v in V:
                total += v
                n += 1
            return total, n

        total, n = stats([2.0, 4.0, 6.0])
        assert total == 12.0 and n == 3
        stats.close()

    def test_single_element_tuple_return_stays_a_tuple(self):
        @diablo.jit(cache=CompilationCache())
        def only_total(V):
            total: float = 0.0
            for v in V:
                total += v
            return (total,)

        result = only_total([1.0, 2.0])
        assert result == (3.0,)
        only_total.close()

    def test_no_return_yields_program_result(self):
        @diablo.jit(cache=CompilationCache())
        def no_return(V):
            total: float = 0.0
            for v in V:
                total += v

        result = no_return([1.0, 2.0])
        assert result["total"] == 3.0
        no_return.close()

    def test_registered_scalar_functions(self):
        def square(x):
            return x * x

        @diablo.jit(cache=CompilationCache(), functions={"square": square})
        def sum_of_squares(V):
            total: float = 0.0
            for v in V:
                total += square(v)
            return total

        assert sum_of_squares([1.0, 2.0, 3.0]) == 14.0
        sum_of_squares.close()


# ---------------------------------------------------------------------------
# typed signatures
# ---------------------------------------------------------------------------


class TestTypedSignatures:
    def test_annotations_become_declared_variable_info(self):
        variables = matrix_addition.target().variables
        assert variables["M"].kind == "array"
        assert variables["M"].declared_type == ast.matrix_of(ast.DOUBLE)
        assert variables["n"].kind == "scalar"
        assert variables["n"].declared_type == ast.INT

    def test_vector_annotation_overrides_traversal_inference(self):
        @diablo.jit(cache=CompilationCache())
        def traversed(V: Vector):
            total: float = 0.0
            for v in V:
                total += v.A
            return total

        info = traversed.target().variables["V"]
        assert info.kind == "array"
        assert info.declared_type == ast.vector_of(ast.DOUBLE)
        traversed.close()

    def test_parameterized_and_collection_annotations(self):
        @diablo.jit(cache=CompilationCache())
        def typed(V: Vector[int], W: Bag, D: Dataset):
            total: float = 0.0
            for i in range(3):
                total += V[i]
            for w in W:
                total += w
            for d in D:
                total += d
            return total

        variables = typed.target().variables
        assert variables["V"].declared_type == ast.vector_of(ast.INT)
        assert variables["W"].kind == "collection"
        assert variables["D"].kind == "collection"
        typed.close()

    def test_dataset_inputs_pass_through(self, context):
        @diablo.jit(cache=CompilationCache())
        def total_of(V: Dataset):
            total: float = 0.0
            for v in V:
                total += v
            return total

        dataset = context.indexed([1.0, 2.0, 3.0])
        assert total_of(dataset) == 6.0
        total_of.close()


# ---------------------------------------------------------------------------
# unified configuration
# ---------------------------------------------------------------------------


class TestConfiguration:
    def test_options_scope_changes_the_runtime(self):
        base_partitions = pagerank.runtime().num_partitions
        with diablo.options(num_partitions=3, executor_mode="threads"):
            scoped = pagerank.runtime()
            assert scoped.num_partitions == 3
            assert scoped.executor == "threads"
        assert pagerank.runtime().num_partitions == base_partitions

    def test_options_nest_and_restore_on_error(self):
        with diablo.options(num_partitions=5):
            with diablo.options(executor_mode="threads"):
                config = diablo.current_config()
                assert config.num_partitions == 5
                assert config.executor_mode == "threads"
            assert diablo.current_config().executor_mode == "sequential"
        with pytest.raises(RuntimeError):
            with diablo.options(num_partitions=2):
                raise RuntimeError("boom")
        assert diablo.current_config().num_partitions == DiabloConfig().num_partitions

    def test_per_function_overrides_compose_with_ambient(self):
        @diablo.jit(cache=CompilationCache(), num_partitions=2)
        def pinned_partitions(V):
            total: float = 0.0
            for v in V:
                total += v
            return total

        assert pinned_partitions.runtime().num_partitions == 2
        with diablo.options(executor_mode="threads"):
            runtime = pinned_partitions.runtime()
            assert runtime.num_partitions == 2
            assert runtime.executor == "threads"
        pinned_partitions.close()

    def test_unknown_and_invalid_options_are_rejected(self):
        with pytest.raises(TypeError, match="unknown DiabloConfig option"):
            DiabloConfig().replace(num_partition=4)
        with pytest.raises(ValueError, match="executor_mode"):
            DiabloConfig(executor_mode="gpu")
        with pytest.raises(TypeError, match="unknown DiabloConfig option"):

            @diablo.jit(num_partitoins=2)
            def typo(V):
                total: float = 0.0
                for v in V:
                    total += v
                return total

    def test_executor_modes_agree(self):
        values = random_doubles(4_000, seed=9)
        expected = conditional_sum(values)
        for mode in ("threads", "processes"):
            with diablo.options(executor_mode=mode):
                assert abs(conditional_sum(values) - expected) < 1e-9
        conditional_sum.close()

    def test_facade_picks_up_scoped_config(self):
        with diablo.options(num_partitions=3):
            with Diablo() as facade:
                assert facade.context.num_partitions == 3
        with Diablo(optimize=False) as facade:
            assert facade.config.optimize is False


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_jit_function_as_context_manager(self):
        @diablo.jit(cache=CompilationCache(), executor_mode="threads")
        def totals(V):
            total: float = 0.0
            for v in V:
                total += v
            return total

        with totals:
            assert totals([1.0, 2.0, 3.0]) == 6.0
        assert totals._contexts == {}
        # Still callable after close: a fresh context is created on demand.
        assert totals([1.0]) == 1.0
        totals.close()

    def test_context_cache_is_bounded(self):
        from repro.api.jit import MAX_LIVE_CONTEXTS

        @diablo.jit(cache=CompilationCache())
        def totals(V):
            total: float = 0.0
            for v in V:
                total += v
            return total

        for partitions in range(1, MAX_LIVE_CONTEXTS + 4):
            with diablo.options(num_partitions=partitions):
                assert totals([1.0, 2.0]) == 3.0
        assert len(totals._contexts) == MAX_LIVE_CONTEXTS
        totals.close()

    def test_facade_is_a_context_manager(self):
        with Diablo() as facade:
            result = facade.run("var s: double = 0.0; for v in V do s += v;", V=[1.0, 2.0])
            assert result["s"] == 3.0
