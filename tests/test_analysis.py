"""Tests for the Section 3.2 dependence analysis and Definition 3.1 checker."""

import pytest

from repro.analysis.affine import is_affine_destination, is_affine_expression
from repro.analysis.lvalues import (
    aggregators,
    collect_accesses,
    lvalue_indexes,
    lvalue_overlap,
    readers,
    writers,
)
from repro.analysis.restrictions import RestrictionChecker, check_program
from repro.errors import RestrictionError
from repro.loop_lang.parser import parse_expression, parse_program, parse_statement
from repro.translate.canonicalize import canonicalize_increments
from repro.translate.translator import DiabloCompiler


class TestAccessSets:
    def test_paper_example_access_sets(self):
        # V[W[i]] += n * C[i] * C[i+1]  (Section 3.2)
        stmt = parse_statement("V[W[i]] += n * C[i] * C[i+1];")
        loop_indexes = frozenset({"i"})
        agg = aggregators(stmt, loop_indexes)
        read = readers(stmt, loop_indexes)
        written = writers(stmt, loop_indexes)
        assert [str(a) for a in agg] == ["V[W[i]]"]
        assert written == []
        read_strings = {str(r) for r in read}
        assert read_strings == {"W[i]", "n", "C[i]", "C[(i + 1)]"}

    def test_assignment_is_a_writer(self):
        stmt = parse_statement("V[i] := W[i];")
        assert [str(w) for w in writers(stmt)] == ["V[i]"]
        assert [str(r) for r in readers(stmt, frozenset({"i"}))] == ["W[i]"]

    def test_loop_index_is_not_a_reader(self):
        stmt = parse_statement("V[i] := i;")
        assert readers(stmt, frozenset({"i"})) == []

    def test_collect_accesses_orders_and_contexts(self):
        loop = parse_statement("for i = 0, 9 do { for j = 0, 9 do V[i] += 1; W[i] := V[i]; }")
        accesses = collect_accesses(loop)
        assert len(accesses) == 2
        assert accesses[0].context == {"i", "j"}
        assert accesses[1].context == {"i"}
        assert accesses[0].order < accesses[1].order


class TestOverlap:
    def test_same_variable(self):
        assert lvalue_overlap(parse_expression("x"), parse_expression("x"))
        assert not lvalue_overlap(parse_expression("x"), parse_expression("y"))

    def test_array_accesses_same_array(self):
        assert lvalue_overlap(parse_expression("V[i]"), parse_expression("V[j+1]"))
        assert not lvalue_overlap(parse_expression("V[i]"), parse_expression("W[i]"))

    def test_projections(self):
        assert lvalue_overlap(parse_expression("p.x"), parse_expression("p.x"))
        assert not lvalue_overlap(parse_expression("p.x"), parse_expression("p.y"))

    def test_lvalue_indexes(self):
        expr = parse_expression("M[i, j+1]")
        assert lvalue_indexes(expr, frozenset({"i", "j", "k"})) == {"i", "j"}


class TestAffine:
    def test_affine_expressions(self):
        indexes = frozenset({"i", "j"})
        assert is_affine_expression(parse_expression("i"), indexes)
        assert is_affine_expression(parse_expression("i + 1"), indexes)
        assert is_affine_expression(parse_expression("2*i - j"), indexes)
        assert is_affine_expression(parse_expression("n - 1"), indexes)

    def test_non_affine_expressions(self):
        indexes = frozenset({"i", "j"})
        assert not is_affine_expression(parse_expression("i * j"), indexes)
        assert not is_affine_expression(parse_expression("i / 2"), indexes)

    def test_affine_destination_must_cover_context(self):
        assert is_affine_destination(parse_expression("M[i, j]"), frozenset({"i", "j"}))
        assert not is_affine_destination(parse_expression("V[i]"), frozenset({"i", "j"}))

    def test_scalar_destination_affine_only_outside_loops(self):
        assert is_affine_destination(parse_expression("x"), frozenset())
        assert not is_affine_destination(parse_expression("x"), frozenset({"i"}))

    def test_indirect_index_is_not_affine(self):
        assert not is_affine_destination(parse_expression("V[W[i]]"), frozenset({"i"}))


class TestRestrictions:
    def test_recurrence_is_rejected(self):
        # V[i] := (V[i-1] + V[i+1]) / 2  -- the paper's canonical rejection.
        violations = check_program(parse_program("for i = 1, 9 do V[i] := (V[i-1] + V[i+1]) / 2;"))
        assert violations

    def test_incremental_update_reading_same_array_is_rejected(self):
        violations = check_program(parse_program("for i = 1, 9 do V[i] += V[i+1];"))
        assert violations

    def test_scalar_temporary_is_rejected(self):
        # for i do { n := V[i]; W[i] := f(n) }  -- n is not affine.
        violations = check_program(parse_program("for i = 0, 9 do { n := V[i]; W[i] := sqrt(n); }"))
        assert violations
        assert any("affine" in str(v) for v in violations)

    def test_promoted_temporary_is_accepted(self):
        violations = check_program(
            parse_program("for i = 0, 9 do { n[i] := V[i]; W[i] := sqrt(n[i]); }")
        )
        assert violations == []

    def test_write_then_read_same_location_is_accepted(self):
        violations = check_program(parse_program("for i = 0, 9 do { V[i] := W[i]; U[i] := V[i]; }"))
        assert violations == []

    def test_exception_b_example_from_paper(self):
        # for i do { for j do V[i] += 1; W[i] := V[i] }  -- accepted.
        source = "for i = 0, 9 do { for j = 0, 9 do V[i] += 1; W[i] := V[i]; }"
        assert check_program(parse_program(source)) == []

    def test_exception_b_violation_from_paper(self):
        # Adding M[i,j] := V[i] inside the inner loop violates exception (b).
        source = "for i = 0, 9 do for j = 0, 9 do { V[i] += 1; M[i,j] := V[i]; }"
        assert check_program(parse_program(source))

    def test_var_declaration_inside_for_is_rejected(self):
        violations = check_program(parse_program("for i = 0, 9 do var x: int = 0;"))
        assert violations

    def test_while_inside_for_is_rejected(self):
        violations = check_program(parse_program("for i = 0, 9 do while (V[i] > 0) V[i] += -1;"))
        assert violations

    def test_duplicate_loop_index_is_rejected(self):
        violations = check_program(parse_program("for i = 0, 9 do for i = 0, 9 do V[i] += 1;"))
        assert violations

    def test_non_commutative_increment_rejected(self):
        violations = check_program(parse_program("for i = 0, 9 do V[i] -= 1;"))
        assert violations

    def test_bubble_sort_style_swap_is_rejected(self):
        source = """
        for i = 0, n-1 do {
          t := V[i];
          V[i] := V[i+1];
          V[i+1] := t;
        };
        """
        assert check_program(parse_program(source))

    def test_all_benchmark_programs_pass(self):
        from repro.programs import PROGRAMS
        from repro.comprehension.monoids import MonoidRegistry

        for spec in PROGRAMS.values():
            monoids = MonoidRegistry()
            for monoid in spec.monoids:
                monoids.register(monoid)
            program = canonicalize_increments(parse_program(spec.source), monoids)
            violations = RestrictionChecker(monoids).check_program(program)
            assert violations == [], f"{spec.name}: {[str(v) for v in violations]}"

    def test_compiler_raises_restriction_error(self):
        with pytest.raises(RestrictionError):
            DiabloCompiler().compile("for i = 1, 9 do V[i] := V[i-1];")

    def test_compiler_can_skip_checks(self):
        result = DiabloCompiler(check_restrictions=False).compile("for i = 1, 9 do V[i] := V[i-1];")
        assert result.target.statements

    def test_violation_messages_carry_hints(self):
        violations = check_program(parse_program("for i = 0, 9 do { n := V[i]; W[i] := n; }"))
        assert any(v.hint for v in violations)


class TestCanonicalization:
    def test_assignment_rewritten_to_incremental(self):
        program = canonicalize_increments(parse_program("for w in words do eq := eq && (w == x);"))
        loop = program.statements[0]
        from repro.loop_lang import ast

        assert isinstance(loop.body, ast.IncrementalUpdate)
        assert loop.body.op == "&&"

    def test_reversed_operand_order(self):
        program = canonicalize_increments(parse_program("x := 1 + x;"))
        from repro.loop_lang import ast

        assert isinstance(program.statements[0], ast.IncrementalUpdate)

    def test_non_commutative_not_rewritten(self):
        program = canonicalize_increments(parse_program("x := x - 1;"))
        from repro.loop_lang import ast

        assert isinstance(program.statements[0], ast.Assign)

    def test_unrelated_assignment_untouched(self):
        program = canonicalize_increments(parse_program("x := y + 1;"))
        from repro.loop_lang import ast

        assert isinstance(program.statements[0], ast.Assign)
