"""Tests for the loop-language parser."""

import pytest

from repro.errors import ParseError
from repro.loop_lang import ast
from repro.loop_lang.parser import parse_expression, parse_program, parse_statement


class TestExpressions:
    def test_constants(self):
        assert parse_expression("42") == ast.Const(42)
        assert parse_expression("3.5") == ast.Const(3.5)
        assert parse_expression("true") == ast.Const(True)
        assert parse_expression('"abc"') == ast.Const("abc")

    def test_negative_constant_folds(self):
        assert parse_expression("-3") == ast.Const(-3)

    def test_variable(self):
        assert parse_expression("x") == ast.Var("x")

    def test_arithmetic_precedence(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, ast.BinOp)
        assert expr.op == "+"
        assert isinstance(expr.right, ast.BinOp)
        assert expr.right.op == "*"

    def test_parentheses_override_precedence(self):
        expr = parse_expression("(a + b) * c")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.BinOp)

    def test_comparison(self):
        expr = parse_expression("a < 100")
        assert expr == ast.BinOp("<", ast.Var("a"), ast.Const(100))

    def test_boolean_operators(self):
        expr = parse_expression("a && b || c")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_not_operator(self):
        expr = parse_expression("!a")
        assert expr == ast.UnaryOp("!", ast.Var("a"))

    def test_vector_indexing(self):
        expr = parse_expression("V[i]")
        assert expr == ast.Index(ast.Var("V"), (ast.Var("i"),))

    def test_matrix_indexing(self):
        expr = parse_expression("M[i, j]")
        assert expr == ast.Index(ast.Var("M"), (ast.Var("i"), ast.Var("j")))

    def test_nested_indexing(self):
        expr = parse_expression("V[W[i]]")
        assert expr == ast.Index(ast.Var("V"), (ast.Index(ast.Var("W"), (ast.Var("i"),)),))

    def test_projection(self):
        expr = parse_expression("p.red")
        assert expr == ast.Project(ast.Var("p"), "red")

    def test_tuple_projection(self):
        expr = parse_expression("p._1")
        assert expr == ast.Project(ast.Var("p"), "_1")

    def test_projection_of_index(self):
        expr = parse_expression("closest[i].index")
        assert isinstance(expr, ast.Project)
        assert isinstance(expr.base, ast.Index)

    def test_call(self):
        expr = parse_expression("distance(P[i], C[j])")
        assert isinstance(expr, ast.Call)
        assert expr.function == "distance"
        assert len(expr.arguments) == 2

    def test_call_no_arguments(self):
        assert parse_expression("map()") == ast.Call("map", ())

    def test_tuple_expression(self):
        expr = parse_expression("(a, b, 1)")
        assert isinstance(expr, ast.TupleExpr)
        assert len(expr.elements) == 3

    def test_custom_operators(self):
        expr = parse_expression("a ^ b")
        assert expr.op == "^"
        expr = parse_expression("a ^^ b")
        assert expr.op == "^^"

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a b")


class TestStatements:
    def test_assignment(self):
        stmt = parse_statement("x := 1;")
        assert stmt == ast.Assign(ast.Var("x"), ast.Const(1))

    def test_incremental_update(self):
        stmt = parse_statement("x += 1;")
        assert stmt == ast.IncrementalUpdate(ast.Var("x"), "+", ast.Const(1))

    def test_custom_incremental_update(self):
        stmt = parse_statement("x ^^= Avg(p, 1);")
        assert isinstance(stmt, ast.IncrementalUpdate)
        assert stmt.op == "^^"

    def test_array_assignment(self):
        stmt = parse_statement("R[i, j] := 0.0;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.destination, ast.Index)

    def test_assignment_to_non_destination_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("1 := 2;")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("x := 1")

    def test_var_declaration(self):
        stmt = parse_statement("var sum: double = 0.0;")
        assert stmt == ast.VarDecl("sum", ast.BasicType("double"), ast.Const(0.0))

    def test_var_declaration_with_collection_type(self):
        stmt = parse_statement("var C: map[string, int] = map();")
        assert isinstance(stmt.type, ast.ParametricType)
        assert stmt.type.constructor == "map"
        assert len(stmt.type.parameters) == 2

    def test_for_range(self):
        stmt = parse_statement("for i = 0, n-1 do x += 1;")
        assert isinstance(stmt, ast.ForRange)
        assert stmt.variable == "i"
        assert stmt.lower == ast.Const(0)

    def test_for_in(self):
        stmt = parse_statement("for v in V do x += v;")
        assert isinstance(stmt, ast.ForIn)
        assert stmt.variable == "v"
        assert stmt.source == ast.Var("V")

    def test_while(self):
        stmt = parse_statement("while (k < 10) k += 1;")
        assert isinstance(stmt, ast.While)
        assert isinstance(stmt.body, ast.IncrementalUpdate)

    def test_if_without_else(self):
        stmt = parse_statement("if (v < 100) sum += v;")
        assert isinstance(stmt, ast.If)
        assert stmt.else_branch is None

    def test_if_with_else(self):
        stmt = parse_statement("if (a) x := 1; else x := 2;")
        assert stmt.else_branch is not None

    def test_block(self):
        stmt = parse_statement("{ x := 1; y := 2; }")
        assert isinstance(stmt, ast.Block)
        assert len(stmt.statements) == 2

    def test_block_with_trailing_semicolon(self):
        stmt = parse_statement("{ x := 1; };")
        assert isinstance(stmt, ast.Block)

    def test_unterminated_block_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("{ x := 1;")

    def test_nested_loops(self):
        stmt = parse_statement(
            "for i = 0, 9 do for j = 0, 9 do R[i,j] := 0.0;"
        )
        assert isinstance(stmt, ast.ForRange)
        assert isinstance(stmt.body, ast.ForRange)


class TestTypes:
    def test_basic_type_lowercased(self):
        stmt = parse_statement("var x: Double = 0.0;")
        assert stmt.type == ast.BasicType("double")

    def test_vector_type(self):
        stmt = parse_statement("var V: vector[double] = vector();")
        assert ast.is_array_type(stmt.type)

    def test_matrix_type(self):
        stmt = parse_statement("var M: matrix[double] = matrix();")
        assert ast.array_rank(stmt.type) == 2

    def test_tuple_type(self):
        stmt = parse_statement("var p: (double, double) = P[0];")
        assert isinstance(stmt.type, ast.TupleType)


class TestPrograms:
    def test_multi_statement_program(self):
        program = parse_program("var x: int = 0; for v in V do x += v;")
        assert len(program.statements) == 2

    def test_appendix_word_count_parses(self):
        program = parse_program(
            """
            var C: map[string, int] = map();
            for w in words do
              C[w] += 1;
            """
        )
        assert len(program.statements) == 2

    def test_appendix_matrix_multiplication_parses(self):
        program = parse_program(
            """
            var R: matrix[double] = matrix();
            for i = 0, n-1 do
              for j = 0, n-1 do {
                R[i,j] := 0.0;
                for k = 0, n-1 do
                  R[i,j] += M[i,k]*N[k,j];
              };
            """
        )
        assert len(program.statements) == 2

    def test_all_benchmark_programs_parse(self):
        from repro.programs import PROGRAMS

        for spec in PROGRAMS.values():
            program = parse_program(spec.source)
            assert program.statements, spec.name
