"""Tests for the hand-written baselines: they must agree with their own
sequential reference and with the DIABLO-translated programs."""

import pytest

from repro.baselines import BASELINES, get_baseline
from repro.evaluation.harness import diablo_for
from repro.programs import get_program
from repro.runtime.context import DistributedContext
from repro.workloads import workload_for_program

SIZES = {
    "conditional_sum": 500,
    "equal": 300,
    "string_match": 300,
    "word_count": 500,
    "histogram": 300,
    "linear_regression": 300,
    "group_by": 400,
    "matrix_addition": 8,
    "matrix_multiplication": 6,
    "pagerank": 50,
    "kmeans": 250,
    "matrix_factorization": 10,
}


def close(a, b, tolerance=1e-8):
    if isinstance(a, bool) or isinstance(b, bool):
        return bool(a) == bool(b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return abs(a - b) <= tolerance * max(1.0, abs(a), abs(b))
    if isinstance(a, tuple) and isinstance(b, tuple):
        return all(close(x, y, tolerance) for x, y in zip(a, b, strict=False))
    return a == b


def dicts_close(a, b, tolerance=1e-8):
    assert set(a.keys()) == set(b.keys())
    for key in a:
        assert close(a[key], b[key], tolerance), f"{key}: {a[key]} != {b[key]}"


@pytest.mark.parametrize("name", sorted(BASELINES), ids=sorted(BASELINES))
def test_distributed_baseline_matches_sequential_baseline(name):
    inputs = workload_for_program(name, SIZES[name])
    module = get_baseline(name)
    context = DistributedContext(num_partitions=4)
    distributed = module.distributed(context, inputs)
    sequential = module.sequential(inputs)
    for key, value in sequential.items():
        if isinstance(value, dict):
            dicts_close(distributed[key], value, tolerance=1e-6)
        else:
            assert close(distributed[key], value, tolerance=1e-6), key


@pytest.mark.parametrize(
    "name",
    [
        "conditional_sum",
        "equal",
        "string_match",
        "word_count",
        "histogram",
        "linear_regression",
        "group_by",
        "matrix_addition",
        "matrix_multiplication",
    ],
)
def test_diablo_matches_handwritten_baseline(name):
    inputs = workload_for_program(name, SIZES[name])
    spec = get_program(name)
    diablo = diablo_for(spec)
    translated = diablo.compile(spec.source).run(**inputs)
    baseline = get_baseline(name).distributed(DistributedContext(num_partitions=4), inputs)
    for scalar in spec.scalar_outputs:
        assert close(translated[scalar], baseline[scalar], tolerance=1e-6), scalar
    for array in spec.array_outputs:
        dicts_close(translated.array(array), baseline[array], tolerance=1e-6)


def test_diablo_pagerank_matches_baseline_ranks():
    inputs = workload_for_program("pagerank", SIZES["pagerank"])
    spec = get_program("pagerank")
    diablo = diablo_for(spec)
    translated = diablo.compile(spec.source).run(**inputs)
    baseline = get_baseline("pagerank").distributed(DistributedContext(num_partitions=4), inputs)
    dicts_close(translated.array("P"), baseline["P"], tolerance=1e-6)
    # The DIABLO degree vector also contains explicit zeros for sink vertices.
    diablo_degrees = {k: v for k, v in translated.array("C").items() if v}
    dicts_close(diablo_degrees, baseline["C"])


def test_diablo_kmeans_matches_baseline_centroids():
    inputs = workload_for_program("kmeans", SIZES["kmeans"])
    spec = get_program("kmeans")
    diablo = diablo_for(spec)
    translated = diablo.compile(spec.source).run(**inputs)
    baseline = get_baseline("kmeans").distributed(DistributedContext(num_partitions=4), inputs)
    dicts_close(translated.array("C"), baseline["C"], tolerance=1e-9)


def test_diablo_matrix_factorization_matches_baseline_error_matrix():
    inputs = workload_for_program("matrix_factorization", SIZES["matrix_factorization"])
    spec = get_program("matrix_factorization")
    diablo = diablo_for(spec)
    translated = diablo.compile(spec.source).run(**inputs)
    baseline = get_baseline("matrix_factorization").distributed(
        DistributedContext(num_partitions=4), inputs
    )
    # The error matrix is identical; the factor updates differ only in how the
    # regularization term is counted (once per rating in the loop program vs
    # once per entry in the hand-written program), so compare those loosely.
    dicts_close(translated.array("E"), baseline["E"], tolerance=1e-9)
    for key, value in baseline["P"].items():
        assert abs(translated.array("P")[key] - value) < 1e-2
